"""Content-addressed, persistent results store.

The experiment orchestrator (:mod:`repro.experiments.orchestrator`)
decomposes each experiment into *work units*; this module persists their
outputs so that re-running a sweep skips every cell that has already been
computed and interrupted grids resume where they stopped.

Entries are **content-addressed**: the key of a cell is a SHA-256 digest
over the canonical JSON of its function's dotted path, its parameters
(seed, scale and every code-relevant knob live in there) and the digests
of the cells it depends on — so two cells with identical inputs share one
entry, and any change to the inputs produces a fresh key.

Serialization reuses the exact ``.npz``-with-JSON-sidecar round-tripping
of :mod:`repro.core.io`: NumPy arrays are stored raw (bit-for-bit), and
the JSON skeleton preserves Python floats exactly (``repr`` round-trip),
so a payload loaded from the store is numerically indistinguishable from
the freshly computed one.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .io import decode_meta, encode_meta, npz_path

__all__ = [
    "GCStats",
    "MISSING",
    "ResultsStore",
    "StoreFormatError",
    "digest_key",
    "load_payload",
    "pack_payload",
    "save_payload",
    "unpack_payload",
]


class StoreFormatError(ValueError):
    """A *valid* entry this code version cannot read (kind/format mismatch).

    Distinct from corruption: on a store shared between machines running
    different code versions the entry must be left in place for the
    writers who can read it, never deleted.
    """

#: Sentinel distinguishing "no (readable) entry" from a stored ``None``
#: payload — ``None`` is a perfectly legal payload value.  Pass as the
#: ``default`` of :meth:`ResultsStore.load_or_none` wherever that
#: distinction matters (cache scans, worker skip shortcuts).
MISSING = object()

_STORE_VERSION = 1

_ARRAY_TAG = "__ndarray__"


def pack_payload(payload: Any) -> tuple[Any, list[np.ndarray]]:
    """Split ``payload`` into a JSON-able skeleton plus extracted arrays.

    Supported payloads are arbitrary nestings of ``dict`` (string keys),
    ``list``/``tuple`` (tuples come back as lists), ``str``, ``bool``,
    ``int``, ``float``, ``None``, NumPy scalars (converted losslessly via
    ``.item()``) and ``np.ndarray`` (replaced by an ``{"__ndarray__": i}``
    marker and collected into the returned list, preserving dtype).
    """
    arrays: list[np.ndarray] = []

    def walk(node: Any) -> Any:
        if isinstance(node, np.ndarray):
            arrays.append(node)
            return {_ARRAY_TAG: len(arrays) - 1}
        if isinstance(node, np.generic):
            return node.item()
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                if not isinstance(key, str):
                    raise TypeError(f"payload dict keys must be str, got {key!r}")
                if key == _ARRAY_TAG:
                    raise TypeError(f"payload dict key {_ARRAY_TAG!r} is reserved")
                out[key] = walk(value)
            return out
        if isinstance(node, (list, tuple)):
            return [walk(item) for item in node]
        if node is None or isinstance(node, (str, bool, int, float)):
            return node
        raise TypeError(f"unsupported payload element of type {type(node).__name__}")

    return walk(payload), arrays


def unpack_payload(skeleton: Any, arrays: list[np.ndarray]) -> Any:
    """Inverse of :func:`pack_payload`."""

    def walk(node: Any) -> Any:
        if isinstance(node, dict):
            if set(node) == {_ARRAY_TAG}:
                return arrays[node[_ARRAY_TAG]]
            return {key: walk(value) for key, value in node.items()}
        if isinstance(node, list):
            return [walk(item) for item in node]
        return node

    return walk(skeleton)


def _canonical_json(obj: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_key(fn: str, params: Mapping[str, Any], dep_digests: Mapping[str, str] | None = None) -> str:
    """SHA-256 content address of one work unit.

    ``fn`` is the dotted path of the cell function, ``params`` its
    JSON-able keyword arguments, ``dep_digests`` maps dependency names to
    their own digests — so the address covers the whole upstream input
    closure, not just the local parameters.
    """
    blob = _canonical_json({
        "version": _STORE_VERSION,
        "fn": fn,
        "params": params,
        "deps": dict(dep_digests or {}),
    })
    return hashlib.sha256(blob.encode()).hexdigest()


def save_payload(path: str | Path, payload: Any, extra_meta: Mapping[str, Any] | None = None) -> Path:
    """Write a payload as one ``.npz`` archive (meta JSON embedded)."""
    path = npz_path(path)
    skeleton, arrays = pack_payload(payload)
    meta = {
        "format_version": _STORE_VERSION,
        "kind": "payload",
        "skeleton": skeleton,
        "extra": dict(extra_meta or {}),
    }
    np.savez_compressed(
        path,
        meta=encode_meta(meta),
        **{f"arr_{i}": arr for i, arr in enumerate(arrays)},
    )
    return path


def load_payload(path: str | Path) -> Any:
    """Read a payload written by :func:`save_payload`."""
    with np.load(Path(path)) as data:
        meta = decode_meta(data)
        if meta.get("kind") != "payload":
            raise StoreFormatError(f"expected a saved payload, found {meta.get('kind')!r}")
        if meta.get("format_version") != _STORE_VERSION:
            raise StoreFormatError(f"unsupported store format version {meta.get('format_version')}")
        skeleton = meta["skeleton"]
        arrays = []
        i = 0
        while f"arr_{i}" in data:
            arrays.append(data[f"arr_{i}"].copy())
            i += 1
    return unpack_payload(skeleton, arrays)


@dataclass(frozen=True)
class GCStats:
    """Outcome of one :meth:`ResultsStore.gc` pass."""

    evicted: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int


class ResultsStore:
    """A directory of content-addressed cell payloads.

    One ``.npz`` file per entry, named by digest.  ``save`` writes through
    a per-process temporary file (dot-prefixed, so it never counts as an
    entry) and atomically renames, so a killed run never leaves a corrupt
    entry behind — the next ``--resume`` simply recomputes the missing
    cell — and concurrent runs computing the same cell race benignly:
    both write complete files and the renames are atomic, last one wins
    with identical content.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        # Digests that :meth:`gc` must never evict while this handle is
        # open — live session checkpoints of an in-flight serve run.  The
        # pins are per-process by design: a crashed server's stale pins
        # die with it, leaving its checkpoints ordinary (evictable)
        # entries until the resuming server re-pins them.
        self._pins: set[str] = set()

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.npz"

    def pin(self, digest: str) -> None:
        """Shield ``digest`` from :meth:`gc` until :meth:`unpin` or process exit."""
        self._pins.add(digest)

    def unpin(self, digest: str) -> None:
        self._pins.discard(digest)

    def pinned(self) -> frozenset[str]:
        """Currently pinned digests (a snapshot)."""
        return frozenset(self._pins)

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def load(self, digest: str) -> Any:
        path = self.path_for(digest)
        payload = load_payload(path)
        # Bump the entry's mtime so :meth:`gc` sees it as recently used
        # (atimes are unreliable under relatime/noatime mounts).
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def load_or_none(self, digest: str, default: Any = None) -> Any:
        """:meth:`load`, except missing/corrupt entries return ``default``.

        ``save`` renames complete files into place, so a corrupt entry
        can only come from outside the normal write path (a truncating
        filesystem, a partial copy between machines, manual tampering).
        Such an entry is deleted so the caller — the orchestrator's
        cache scan, a spool worker resolving dependencies — treats it as
        a plain cache miss and recomputes the cell instead of crashing
        the run.  Since ``None`` is itself a storable payload, callers
        that must tell the two apart pass :data:`MISSING` as ``default``.
        """
        path = self.path_for(digest)
        try:
            return self.load(digest)
        except OSError:
            # Missing entry or a *transient* I/O failure (stale NFS
            # handle, fd exhaustion): a plain miss, never a deletion —
            # the entry may be perfectly valid.
            return default
        except StoreFormatError:
            # Another code version's valid entry (shared store): miss,
            # but never delete what its writer can still read.  (This
            # guard is best-effort defense in depth — a format change
            # also changes every content address via digest_key's
            # version field, so same-digest cross-version reads should
            # not occur in the first place.)
            return default
        except (ValueError, KeyError, EOFError, zipfile.BadZipFile,
                zlib.error, json.JSONDecodeError):
            # Content corruption — a torn mid-file copy surfaces as
            # zlib.error/EOFError with the zip directory still intact,
            # garbage bytes as BadZipFile/ValueError.  Drop the entry so
            # it recomputes (best effort: a read-only share still gets
            # the miss, the recompute simply overwrites later).
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return default

    def save(self, digest: str, payload: Any, extra_meta: Mapping[str, Any] | None = None) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path_for(digest)
        tmp = self.root / f".tmp-{os.getpid()}-{digest}.npz"
        try:
            save_payload(tmp, payload, extra_meta=extra_meta)
            tmp.replace(final)
        finally:
            tmp.unlink(missing_ok=True)
        return final

    def delete(self, digest: str) -> bool:
        """Drop one entry; returns whether it existed."""
        path = self.path_for(digest)
        if path.exists():
            path.unlink()
            return True
        return False

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for p in self.root.glob("*.npz") if not p.name.startswith("."))

    def entry_digests(self) -> set[str]:
        """Digests of every entry, from one directory scan.

        For polling loops (the spool executor) that would otherwise
        probe the store once per in-flight cell per tick — one scandir
        replaces O(cells) ``exists`` calls on the shared filesystem.
        """
        try:
            return {entry.name[:-4] for entry in os.scandir(self.root)
                    if entry.name.endswith(".npz")
                    and not entry.name.startswith(".")}
        except FileNotFoundError:
            return set()

    def size_bytes(self) -> int:
        """Total size of all entries (temporary files excluded)."""
        if not self.root.exists():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("*.npz")
                   if not p.name.startswith("."))

    def gc(self, max_bytes: int) -> GCStats:
        """Evict least-recently-used entries until the store fits ``max_bytes``.

        Recency is tracked via entry mtimes: :meth:`save` stamps creation
        and :meth:`load` re-stamps every cache hit, so eviction order is
        true LRU over both writes and reads.  Entries vanishing mid-pass
        (a concurrent run's own gc) are treated as already evicted by the
        other party and skipped.  Entries pinned via :meth:`pin` (live
        session checkpoints of an in-flight serve run) are never evicted;
        they still count toward the total, so a heavily pinned store may
        legitimately finish above ``max_bytes``.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = []
        if self.root.exists():
            for path in self.root.glob("*.npz"):
                if path.name.startswith("."):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        remaining = len(entries)
        evicted = 0
        freed = 0
        for _, size, path in sorted(entries, key=lambda e: e[0]):
            if total <= max_bytes:
                break
            if path.stem in self._pins:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            evicted += 1
            remaining -= 1
        return GCStats(evicted=evicted, freed_bytes=freed,
                       remaining_entries=remaining, remaining_bytes=total)
