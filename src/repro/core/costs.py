"""Cost models of the Mobile Server Problem.

The paper defines two charging schemes for a step in which the server moves
from :math:`P_t` to :math:`P_{t+1}` and the requests :math:`v_{t,i}` arrive:

* **move-first** (the paper's default, Section 2): the server moves upon
  seeing the requests and answers them *afterwards*, so the step costs

  .. math:: D\\,d(P_t, P_{t+1}) + \\sum_i d(P_{t+1}, v_{t,i});

* **answer-first** (Section 2, "Answer-First Variant"): requests are served
  before moving,

  .. math:: \\sum_i d(P_t, v_{t,i}) + D\\,d(P_t, P_{t+1}).

The difference looks cosmetic but changes the achievable competitive ratio
from :math:`O(1/\\delta^{3/2})` to :math:`\\Theta(r/D)`-dependent (Theorems 3
and 7), so both are first-class here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .metric import distance
from .requests import RequestBatch

__all__ = ["CostModel", "StepCost", "step_cost", "CostAccumulator"]


class CostModel(enum.Enum):
    """Which position answers the requests of a step.

    ``MOVEMENT_ONLY`` charges no service term at all — it is how k-server
    style problems (where requests must be *covered*, not answered at a
    distance) are expressed as scenarios of this engine: the algorithm is
    obliged to place a server on the request, so only movement accrues.
    """

    MOVE_FIRST = "move-first"
    ANSWER_FIRST = "answer-first"
    MOVEMENT_ONLY = "movement-only"

    @property
    def serves_after_move(self) -> bool:
        return self is CostModel.MOVE_FIRST

    @property
    def counts_service(self) -> bool:
        """Whether the service term contributes to the step cost."""
        return self is not CostModel.MOVEMENT_ONLY


@dataclass(frozen=True)
class StepCost:
    """Cost breakdown of a single step.

    Attributes
    ----------
    movement:
        :math:`D \\cdot d(P_t, P_{t+1})` — weighted movement cost.
    service:
        :math:`\\sum_i d(P, v_{t,i})` with :math:`P` chosen per the model.
    distance_moved:
        Raw (unweighted) distance :math:`d(P_t, P_{t+1})`.
    """

    movement: float
    service: float
    distance_moved: float

    @property
    def total(self) -> float:
        return self.movement + self.service


def step_cost(
    old_position: np.ndarray,
    new_position: np.ndarray,
    batch: RequestBatch,
    D: float,
    model: CostModel = CostModel.MOVE_FIRST,
    metric=None,
) -> StepCost:
    """Cost of one step under the given model.

    Parameters
    ----------
    old_position, new_position:
        Server positions :math:`P_t` and :math:`P_{t+1}`.
    batch:
        Requests of the step.
    D:
        Movement weight (page size); the paper assumes :math:`D \\ge 1`.
    model:
        Which position serves the requests.
    metric:
        The :class:`~repro.core.metric.Metric` to measure in; ``None``
        keeps the ℓ2 fast path (bit-identical to the Euclidean instance).
    """
    moved = distance(old_position, new_position) if metric is None \
        else metric.distance(old_position, new_position)
    if model.counts_service:
        serving_pos = new_position if model.serves_after_move else old_position
        service = batch.service_cost(serving_pos, metric=metric)
    else:
        service = 0.0
    return StepCost(movement=D * moved, service=service, distance_moved=moved)


class CostAccumulator:
    """Running totals over a simulation; avoids re-summing trace arrays."""

    __slots__ = ("movement", "service", "distance_moved", "steps")

    def __init__(self) -> None:
        self.movement = 0.0
        self.service = 0.0
        self.distance_moved = 0.0
        self.steps = 0

    def add(self, cost: StepCost) -> None:
        self.movement += cost.movement
        self.service += cost.service
        self.distance_moved += cost.distance_moved
        self.steps += 1

    @property
    def total(self) -> float:
        return self.movement + self.service

    def as_dict(self) -> dict[str, float]:
        return {
            "total": self.total,
            "movement": self.movement,
            "service": self.service,
            "distance_moved": self.distance_moved,
            "steps": float(self.steps),
        }
