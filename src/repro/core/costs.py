"""Cost models of the Mobile Server Problem.

The paper defines two charging schemes for a step in which the server moves
from :math:`P_t` to :math:`P_{t+1}` and the requests :math:`v_{t,i}` arrive:

* **move-first** (the paper's default, Section 2): the server moves upon
  seeing the requests and answers them *afterwards*, so the step costs

  .. math:: D\\,d(P_t, P_{t+1}) + \\sum_i d(P_{t+1}, v_{t,i});

* **answer-first** (Section 2, "Answer-First Variant"): requests are served
  before moving,

  .. math:: \\sum_i d(P_t, v_{t,i}) + D\\,d(P_t, P_{t+1}).

The difference looks cosmetic but changes the achievable competitive ratio
from :math:`O(1/\\delta^{3/2})` to :math:`\\Theta(r/D)`-dependent (Theorems 3
and 7), so both are first-class here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .geometry import distance
from .requests import RequestBatch

__all__ = ["CostModel", "StepCost", "step_cost", "CostAccumulator"]


class CostModel(enum.Enum):
    """Which position answers the requests of a step."""

    MOVE_FIRST = "move-first"
    ANSWER_FIRST = "answer-first"

    @property
    def serves_after_move(self) -> bool:
        return self is CostModel.MOVE_FIRST


@dataclass(frozen=True)
class StepCost:
    """Cost breakdown of a single step.

    Attributes
    ----------
    movement:
        :math:`D \\cdot d(P_t, P_{t+1})` — weighted movement cost.
    service:
        :math:`\\sum_i d(P, v_{t,i})` with :math:`P` chosen per the model.
    distance_moved:
        Raw (unweighted) distance :math:`d(P_t, P_{t+1})`.
    """

    movement: float
    service: float
    distance_moved: float

    @property
    def total(self) -> float:
        return self.movement + self.service


def step_cost(
    old_position: np.ndarray,
    new_position: np.ndarray,
    batch: RequestBatch,
    D: float,
    model: CostModel = CostModel.MOVE_FIRST,
) -> StepCost:
    """Cost of one step under the given model.

    Parameters
    ----------
    old_position, new_position:
        Server positions :math:`P_t` and :math:`P_{t+1}`.
    batch:
        Requests of the step.
    D:
        Movement weight (page size); the paper assumes :math:`D \\ge 1`.
    model:
        Which position serves the requests.
    """
    moved = distance(old_position, new_position)
    serving_pos = new_position if model.serves_after_move else old_position
    service = batch.service_cost(serving_pos)
    return StepCost(movement=D * moved, service=service, distance_moved=moved)


class CostAccumulator:
    """Running totals over a simulation; avoids re-summing trace arrays."""

    __slots__ = ("movement", "service", "distance_moved", "steps")

    def __init__(self) -> None:
        self.movement = 0.0
        self.service = 0.0
        self.distance_moved = 0.0
        self.steps = 0

    def add(self, cost: StepCost) -> None:
        self.movement += cost.movement
        self.service += cost.service
        self.distance_moved += cost.distance_moved
        self.steps += 1

    @property
    def total(self) -> float:
        return self.movement + self.service

    def as_dict(self) -> dict[str, float]:
        return {
            "total": self.total,
            "movement": self.movement,
            "service": self.service,
            "distance_moved": self.distance_moved,
            "steps": float(self.steps),
        }
