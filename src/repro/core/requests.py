"""Request batches and request sequences.

In every time step ``t`` of the Mobile Server Problem an arbitrary finite
number :math:`r_t` of requests pops up at points
:math:`v_{t,1},\\dots,v_{t,r_t}` of the Euclidean space.  This module
provides the two containers used everywhere else:

* :class:`RequestBatch` — the requests of one step, an ``(r, d)`` array
  with convenience accessors;
* :class:`RequestSequence` — the full (possibly ragged) sequence, with an
  optional packed ``(T, r, d)`` fast path when every step has the same
  number of requests (the case analysed in Section 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .metric import as_points, distances_to

__all__ = ["RequestBatch", "RequestSequence"]


@dataclass(frozen=True)
class RequestBatch:
    """The requests of a single time step.

    Attributes
    ----------
    points:
        ``(r, d)`` float64 array; one row per requesting client.  May be
        empty (``r = 0``) — steps without requests are legal and only incur
        movement cost.
    """

    points: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", as_points(self.points))

    @property
    def count(self) -> int:
        """Number of requests ``r`` in this step."""
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        """Dimension of the ambient space."""
        return int(self.points.shape[1])

    def service_cost(self, position: np.ndarray, metric=None) -> float:
        """Total cost of answering every request from ``position``.

        This is :math:`\\sum_i d(P, v_i)` — the per-step serving term of the
        paper's cost function.  ``metric`` selects the space; ``None`` keeps
        the ℓ2 fast path (identical arithmetic to the Euclidean instance).
        """
        if self.count == 0:
            return 0.0
        if metric is None:
            return float(distances_to(position, self.points).sum())
        return float(metric.distances_to(position, self.points).sum())

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.points)

    def __len__(self) -> int:
        return self.count


class RequestSequence:
    """A full input sequence :math:`v_{1,\\cdot},\\dots,v_{T,\\cdot}`.

    The sequence may be *ragged* (varying :math:`r_t`).  When all steps have
    the same request count the batches are additionally packed into a single
    ``(T, r, d)`` array, exposed as :attr:`packed`, which the simulator uses
    to avoid per-step allocation.

    Parameters
    ----------
    batches:
        Iterable of ``(r_t, d)`` arrays or :class:`RequestBatch` objects.
    dim:
        Ambient dimension; inferred from the first non-empty batch when
        omitted, required when all batches are empty.
    """

    def __init__(
        self,
        batches: Iterable[np.ndarray | RequestBatch | Sequence[Sequence[float]]],
        dim: int | None = None,
    ) -> None:
        normalised: list[RequestBatch] = []
        for b in batches:
            if isinstance(b, RequestBatch):
                normalised.append(b)
            else:
                normalised.append(RequestBatch(as_points(b, dim=None)))
        if dim is None:
            for b in normalised:
                if b.count > 0:
                    dim = b.dim
                    break
        if dim is None:
            raise ValueError("cannot infer dimension from an all-empty sequence; pass dim=")
        for t, b in enumerate(normalised):
            if b.count > 0 and b.dim != dim:
                raise ValueError(f"batch {t} has dimension {b.dim}, expected {dim}")
        # Re-shape empty batches so every batch agrees on d.
        self._batches: list[RequestBatch] = [
            b if b.count > 0 else RequestBatch(np.empty((0, dim))) for b in normalised
        ]
        self._dim = int(dim)
        counts = np.array([b.count for b in self._batches], dtype=np.int64)
        self._counts = counts
        self._packed: np.ndarray | None = None
        if len(self._batches) > 0 and counts.size > 0 and np.all(counts == counts[0]) and counts[0] > 0:
            self._packed = np.stack([b.points for b in self._batches])

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_packed(cls, packed: np.ndarray) -> "RequestSequence":
        """Build a fixed-``r`` sequence from a ``(T, r, d)`` array."""
        packed = np.asarray(packed, dtype=np.float64)
        if packed.ndim == 2:  # (T, d): one request per step
            packed = packed[:, None, :]
        if packed.ndim != 3:
            raise ValueError(f"expected (T, r, d) array, got shape {packed.shape}")
        return cls(list(packed), dim=packed.shape[2])

    @classmethod
    def single_requests(cls, points: np.ndarray) -> "RequestSequence":
        """Build a one-request-per-step sequence from a ``(T, d)`` array."""
        return cls.from_packed(np.asarray(points, dtype=np.float64))

    # -- accessors -------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def length(self) -> int:
        """Number of time steps ``T``."""
        return len(self._batches)

    @property
    def counts(self) -> np.ndarray:
        """``(T,)`` int array of per-step request counts :math:`r_t`."""
        return self._counts

    @property
    def r_min(self) -> int:
        """Minimum requests per step (``R_min`` in the paper)."""
        return int(self._counts.min()) if self.length else 0

    @property
    def r_max(self) -> int:
        """Maximum requests per step (``R_max`` in the paper)."""
        return int(self._counts.max()) if self.length else 0

    @property
    def is_uniform(self) -> bool:
        """True when every step has the same (positive) request count."""
        return self._packed is not None

    @property
    def packed(self) -> np.ndarray | None:
        """``(T, r, d)`` view for uniform sequences, else ``None``."""
        return self._packed

    def total_requests(self) -> int:
        return int(self._counts.sum())

    def all_points(self) -> np.ndarray:
        """All request points concatenated into one ``(N, d)`` array."""
        if self.length == 0:
            return np.empty((0, self._dim))
        return np.concatenate([b.points for b in self._batches], axis=0)

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, t: int) -> RequestBatch:
        return self._batches[t]

    def __iter__(self) -> Iterator[RequestBatch]:
        return iter(self._batches)

    def slice(self, start: int, stop: int) -> "RequestSequence":
        """Sub-sequence of steps ``start:stop`` (shares the batch arrays)."""
        return RequestSequence(self._batches[start:stop], dim=self._dim)

    def concat(self, other: "RequestSequence") -> "RequestSequence":
        """Concatenate two sequences of equal dimension."""
        if other.dim != self.dim:
            raise ValueError("dimension mismatch in concat")
        return RequestSequence(self._batches + list(other), dim=self._dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestSequence(T={self.length}, dim={self._dim}, "
            f"r_min={self.r_min}, r_max={self.r_max})"
        )
