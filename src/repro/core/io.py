"""Persistence of instances and traces.

Experiments that take minutes to generate should be storable: this module
saves/loads :class:`~repro.core.instance.MSPInstance` and
:class:`~repro.core.trace.Trace` objects as ``.npz`` archives (raw arrays,
ragged sequences flattened with an offsets vector) with model parameters in
a JSON sidecar entry.  Round-tripping is exact: every float is preserved
bit-for-bit, so replayed costs match to the last ulp.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .costs import CostModel
from .instance import MSPInstance
from .requests import RequestSequence
from .trace import Trace

__all__ = ["save_instance", "load_instance", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


def npz_path(path: str | Path) -> Path:
    """Normalize a target path: append ``.npz`` unless already present."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def encode_meta(meta: dict) -> np.ndarray:
    """JSON-encode a metadata dict as a uint8 array for an npz entry."""
    return np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)


def decode_meta(data: np.lib.npyio.NpzFile) -> dict:
    """Read back a metadata dict written by :func:`encode_meta`."""
    return json.loads(bytes(data["meta"].tobytes()).decode())


def save_instance(instance: MSPInstance, path: str | Path) -> Path:
    """Write an instance to ``path`` (``.npz`` appended if missing)."""
    path = npz_path(path)
    seq = instance.requests
    flat = seq.all_points()
    offsets = np.concatenate([[0], np.cumsum(seq.counts)]).astype(np.int64)
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "instance",
        "D": instance.D,
        "m": instance.m,
        "cost_model": instance.cost_model.value,
        "name": instance.name,
        "dim": instance.dim,
    }
    np.savez_compressed(
        path,
        meta=encode_meta(meta),
        flat_points=flat,
        offsets=offsets,
        start=instance.start,
    )
    return path


def _read_meta(data: np.lib.npyio.NpzFile, expected_kind: str) -> dict:
    meta = decode_meta(data)
    if meta.get("kind") != expected_kind:
        raise ValueError(f"expected a saved {expected_kind}, found {meta.get('kind')!r}")
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {meta.get('format_version')}")
    return meta


def load_instance(path: str | Path) -> MSPInstance:
    """Read an instance saved by :func:`save_instance`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data, "instance")
        flat = data["flat_points"]
        offsets = data["offsets"]
        start = data["start"]
    batches = [flat[offsets[i]:offsets[i + 1]] for i in range(offsets.shape[0] - 1)]
    seq = RequestSequence(batches, dim=int(meta["dim"]))
    return MSPInstance(
        requests=seq,
        start=start,
        D=float(meta["D"]),
        m=float(meta["m"]),
        cost_model=CostModel(meta["cost_model"]),
        name=str(meta["name"]),
    )


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    path = npz_path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "trace",
        "algorithm": trace.algorithm,
    }
    np.savez_compressed(
        path,
        meta=encode_meta(meta),
        positions=trace.positions,
        movement_costs=trace.movement_costs,
        service_costs=trace.service_costs,
        distances_moved=trace.distances_moved,
        request_counts=trace.request_counts,
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace saved by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        meta = _read_meta(data, "trace")
        return Trace(
            positions=data["positions"].copy(),
            movement_costs=data["movement_costs"].copy(),
            service_costs=data["service_costs"].copy(),
            distances_moved=data["distances_moved"].copy(),
            request_counts=data["request_counts"].copy(),
            algorithm=str(meta["algorithm"]),
        )
