"""The online simulation engine.

:func:`simulate` plays an :class:`~repro.algorithms.base.OnlineAlgorithm`
against an :class:`~repro.core.instance.MSPInstance`, producing a
:class:`~repro.core.trace.Trace`.  The loop is deliberately small: reveal
the batch, ask the algorithm for its new position, validate the movement
cap, account costs under the instance's cost model.

Resource augmentation is expressed through ``delta``: the algorithm's cap is
:math:`(1+\\delta) m` while costs stay identical, matching Section 3 of the
paper.  ``delta=0`` recovers the un-augmented problem.

For sweeps over many instances, :mod:`repro.core.engine` provides
:func:`~repro.core.engine.simulate_batch`, which plays ``B`` same-length
instances in lock-step with vectorized accounting and reproduces this
scalar loop bit-for-bit per lane.

.. note::
   Prefer the scenario layer (:func:`repro.api.run`) over calling this
   module directly: anything expressible as *source × algorithm × seeds*
   gets engine selection, capability validation and store caching there.
   This entry point stays public for step-level custom loops (callbacks,
   adaptive opponents).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from .metric import Metric, distances_to, get_metric
from .instance import MovingClientInstance, MSPInstance
from .trace import Trace
from .validation import check_move

if TYPE_CHECKING:  # imported only for type hints; avoids a core<->algorithms cycle
    from ..algorithms.base import OnlineAlgorithm

__all__ = ["simulate", "simulate_moving_client", "replay_cost", "StepCallback"]

#: Optional observer invoked after every step with
#: ``(t, old_position, new_position, batch_points)``.
StepCallback = Callable[[int, np.ndarray, np.ndarray, np.ndarray], None]


def simulate(
    instance: MSPInstance,
    algorithm: "OnlineAlgorithm",
    delta: float = 0.0,
    callback: StepCallback | None = None,
    metric: "str | Metric | None" = None,
) -> Trace:
    """Run ``algorithm`` on ``instance`` with augmentation ``delta``.

    Parameters
    ----------
    instance:
        The problem input (requests, start, ``D``, ``m``, cost model).
    algorithm:
        Any online algorithm; it is ``reset`` with cap :math:`(1+\\delta)m`.
    delta:
        Resource-augmentation factor :math:`\\delta \\ge 0`.
    callback:
        Optional per-step observer (used by the potential-function
        analysis); receives positions *after* validation.
    metric:
        The space the run is measured in — a registry name or
        :class:`~repro.core.metric.Metric` instance.  ``None`` (and the
        Euclidean instance) keep the exact ℓ2 hot path; the instance is
        also injected as ``algorithm.metric`` *before* ``reset`` so
        metric-aware algorithms pick it up.

    Returns
    -------
    Trace
        Full trajectory and per-step cost breakdown.
    """
    if metric is not None:
        metric = get_metric(metric)
        algorithm.metric = metric
        if metric.name == "euclidean":
            metric = None  # ℓ2 fast path is bit-identical by construction
    cap = instance.online_cap(delta)
    algorithm.reset(instance, cap)
    requests = instance.requests
    T = requests.length
    trace = Trace.allocate(T, instance.dim, algorithm=algorithm.name)
    trace.positions[0] = algorithm.position
    D = instance.D
    serve_after_move = instance.cost_model.serves_after_move
    counts_service = instance.cost_model.counts_service

    # ``pos`` is the simulator's private copy of the pre-move position.  It
    # must never alias ``algorithm.position``: a decide() that mutates its
    # position in place and returns it (legal-looking but against the API
    # contract) would otherwise corrupt movement accounting and the trace.
    pos = np.array(algorithm.position, dtype=np.float64, copy=True)
    for t in range(T):
        batch = requests[t]
        new_pos = np.asarray(algorithm.decide(t, batch), dtype=np.float64)
        moved = check_move(t, pos, new_pos, cap, algorithm.name, metric=metric)
        serving_pos = new_pos if serve_after_move else pos
        if batch.count and counts_service:
            if metric is None:
                service = float(distances_to(serving_pos, batch.points).sum())
            else:
                service = float(metric.distances_to(serving_pos, batch.points).sum())
        else:
            service = 0.0
        trace.positions[t + 1] = new_pos  # copies values out of new_pos
        trace.movement_costs[t] = D * moved
        trace.service_costs[t] = service
        trace.distances_moved[t] = moved
        trace.request_counts[t] = batch.count
        if callback is not None:
            callback(t, pos, new_pos, batch.points)
        algorithm.position = new_pos
        pos = np.array(new_pos, dtype=np.float64, copy=True)
    return trace


def simulate_moving_client(
    instance: MovingClientInstance,
    algorithm: "OnlineAlgorithm",
    delta: float = 0.0,
    callback: StepCallback | None = None,
) -> Trace:
    """Run the Moving Client variant (Section 5).

    The variant is the move-first model with one request per step at the
    agent's position; the agent's speed constraint is validated by the
    instance itself at construction.
    """
    return simulate(instance.as_msp(), algorithm, delta=delta, callback=callback)


def replay_cost(
    instance: MSPInstance,
    positions: np.ndarray,
    validate_cap: float | None = None,
) -> Trace:
    """Cost a *given* server trajectory on an instance.

    Used to evaluate offline solutions (DP outputs, analytic adversary
    trajectories) under exactly the same accounting as online runs.

    Parameters
    ----------
    positions:
        ``(T + 1, d)`` trajectory including the starting position, or
        ``(T, d)`` of post-move positions (the start is prepended).
    validate_cap:
        When given, every step is checked against this cap.
    """
    requests = instance.requests
    T = requests.length
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2:
        raise ValueError(f"positions must be 2-D, got shape {positions.shape}")
    if positions.shape[0] == T:
        positions = np.vstack([instance.start[None, :], positions])
    if positions.shape[0] != T + 1:
        raise ValueError(
            f"need T+1={T + 1} positions (or T={T} post-move rows), got {positions.shape[0]}"
        )
    if positions.shape[1] != instance.dim:
        raise ValueError("trajectory dimension mismatch")

    trace = Trace.allocate(T, instance.dim, algorithm="replay")
    trace.positions[:] = positions
    seg = np.diff(positions, axis=0)
    moved = np.sqrt(np.einsum("ij,ij->i", seg, seg))
    trace.distances_moved[:] = moved
    trace.movement_costs[:] = instance.D * moved
    serve_after_move = instance.cost_model.serves_after_move
    for t in range(T):
        batch = requests[t]
        trace.request_counts[t] = batch.count
        if batch.count:
            serving_pos = positions[t + 1] if serve_after_move else positions[t]
            trace.service_costs[t] = float(distances_to(serving_pos, batch.points).sum())
    if validate_cap is not None:
        trace.validate_against_cap(validate_cap)
    return trace
