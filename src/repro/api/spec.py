"""`ExperimentSpec` — a whole experiment as one declarative object.

The paper's experiments all share one shape: a grid of cells
(source/algorithm/parameter point × seeds) reduced into a table.  An
:class:`ExperimentSpec` states exactly that and nothing else:

* **cells** — either a :class:`~repro.api.grid.ScenarioGrid` (every cell
  is the generic scenario runner, shared brackets factored out
  automatically) or :func:`cell_grid`-expanded *function cells* for
  measurements the scenario layer does not express (geometric samplers,
  potential traces, extension simulators), or both;
* **reducer** — a name in the :mod:`repro.api.reducers` registry turning
  computed payloads into rows/notes/verdict;
* **formatting** — experiment id, title, headers.

``spec.run()`` executes through the experiment orchestrator, so every
spec inherits per-cell content-addressed caching, ``jobs=N`` process
fan-out and resume-after-interrupt without any experiment-specific code;
``spec.to_sweep()`` exposes the underlying
:class:`~repro.experiments.orchestrator.SweepSpec` for `run_all` grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .grid import ScenarioGrid, expand_axes, point_label
from .reducers import reduce_cells, reducer_info
from .scenario import Params, freeze_params, thaw_params

__all__ = ["CellSpec", "ExperimentSpec", "cell_grid", "finalize_spec"]

FINALIZE_FN = "repro.api.spec:finalize_spec"


@dataclass(frozen=True)
class CellSpec:
    """One declarative function cell: dotted-path fn + frozen params.

    ``point`` holds the cell's axis coordinates (a subset of ``params``)
    — the reducer's key for placing the payload in the table.
    """

    key: str
    fn: str
    params: Params = ()
    point: Params = ()
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(self.params))
        # Axis coordinates keep declaration order: it is the row order.
        object.__setattr__(self, "point", freeze_params(self.point, sort=False))

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "fn": self.fn,
            "params": thaw_params(self.params),
            "point": thaw_params(self.point),
            "deps": list(self.deps),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellSpec":
        return cls(
            key=payload["key"],
            fn=payload["fn"],
            params=freeze_params(payload.get("params")),
            point=freeze_params(payload.get("point"), sort=False),
            deps=tuple(payload.get("deps", ())),
        )


def cell_grid(
    fn: str,
    axes: Mapping[str, Any],
    common: Mapping[str, Any] | None = None,
    prefix: str = "cell",
    derive: Mapping[str, Callable[[Mapping[str, Any]], Any]] | None = None,
) -> tuple[CellSpec, ...]:
    """Expand axis dicts into function cells (the non-scenario grid).

    Sequence values in ``axes`` expand exactly like
    :meth:`Scenario.grid`'s axes (first axis outermost); ``common``
    parameters are shared by every cell; ``derive`` computes extra
    per-point parameters from the axis coordinates at build time (e.g.
    a scaled horizon) — the derived values are frozen into the cell's
    params, so they are part of its content address.
    """
    names, points = expand_axes(dict(axes))
    common = dict(common or {})
    cells = []
    for point in points:
        coords = {name: point[name] for name in names}
        params = {**common, **point}
        for key, fn_derive in (derive or {}).items():
            if key in params:
                raise ValueError(f"derived parameter {key!r} collides with an axis or common parameter")
            params[key] = fn_derive(coords)
        label = point_label(coords)
        cells.append(CellSpec(
            key=f"{prefix}/{label}" if label else prefix,
            fn=fn,
            params=freeze_params(params),
            point=freeze_params(coords, sort=False),
        ))
    return tuple(cells)


@dataclass(frozen=True)
class ExperimentSpec:
    """Grid + reducer name + formatting: one experiment, declaratively."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    reducer: str
    grid: ScenarioGrid | None = None
    cells: tuple[CellSpec, ...] = ()
    config: Params = ()
    scale: float = 1.0
    seed: int = 0
    share_brackets: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "headers", tuple(self.headers))
        object.__setattr__(self, "cells", tuple(self.cells))
        object.__setattr__(self, "config", freeze_params(self.config))
        if self.grid is None and not self.cells:
            raise ValueError("an experiment spec needs a scenario grid or function cells")
        reducer_info(self.reducer)  # fail fast on unknown reducer names
        keys = [c.key for c in self.cells]
        if self.grid is not None:
            keys += [f"grid/{k}" for k in self.grid.keys()]
        if len(set(keys)) != len(keys):
            raise ValueError("cell keys must be unique within an experiment spec")

    # -- orchestration -----------------------------------------------------

    def units(self) -> list:
        """All work units: scenario cells (brackets factored) + function cells."""
        from ..experiments.orchestrator import WorkUnit

        units = []
        if self.grid is not None:
            keys = [f"grid/{k}" for k in self.grid.keys()]
            from .runtime import scenario_units

            units.extend(scenario_units(list(self.grid.scenarios), keys=keys,
                                        share_brackets=self.share_brackets))
        for cell in self.cells:
            units.append(WorkUnit(key=cell.key, fn=cell.fn,
                                  params=thaw_params(cell.params), deps=cell.deps))
        return units

    def points(self) -> list[tuple[str, dict[str, Any]]]:
        """``(cell key, axis coordinates)`` in grid declaration order."""
        out: list[tuple[str, dict[str, Any]]] = []
        if self.grid is not None:
            out.extend(zip((f"grid/{k}" for k in self.grid.keys()),
                           self.grid.point_dicts()))
        out.extend((cell.key, thaw_params(cell.point)) for cell in self.cells)
        return out

    def to_sweep(self):
        """The orchestrator :class:`SweepSpec` executing this experiment."""
        from ..experiments.orchestrator import SweepSpec

        return SweepSpec(self.experiment_id, tuple(self.units()),
                         finalize=FINALIZE_FN, scale=self.scale, seed=self.seed,
                         meta=self)

    def run(self, *, jobs: int = 1, store=None, rerun: bool = False,
            executor=None, spool=None, spool_timeout=None):
        """Execute through the orchestrator; returns the ExperimentResult.

        ``executor``/``spool``/``spool_timeout`` select an execution
        backend exactly as :func:`repro.experiments.orchestrator.execute`
        does — e.g. ``executor="spool"`` hands the spec's cells to
        external ``mobile-server worker`` processes.
        """
        from ..experiments.orchestrator import execute_spec

        return execute_spec(self.to_sweep(), jobs=jobs, store=store, rerun=rerun,
                            executor=executor, spool=spool,
                            spool_timeout=spool_timeout)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "reducer": self.reducer,
            "grid": None if self.grid is None else self.grid.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
            "config": thaw_params(self.config),
            "scale": self.scale,
            "seed": self.seed,
            "share_brackets": self.share_brackets,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            reducer=payload["reducer"],
            grid=None if payload.get("grid") is None
            else ScenarioGrid.from_dict(payload["grid"]),
            cells=tuple(CellSpec.from_dict(c) for c in payload.get("cells", ())),
            config=freeze_params(payload.get("config")),
            scale=payload.get("scale", 1.0),
            seed=payload.get("seed", 0),
            share_brackets=payload.get("share_brackets", True),
        )


def finalize_spec(results: Mapping[str, Any], scale: float, seed: int,
                  meta: ExperimentSpec):
    """Generic orchestrator finalize: route payloads through the reducer."""
    from ..experiments.runner import ExperimentResult

    reduction = reduce_cells(meta.reducer, results, points=meta.points(),
                             config=thaw_params(meta.config), scale=scale, seed=seed)
    return ExperimentResult(
        experiment_id=meta.experiment_id,
        title=meta.title,
        headers=list(meta.headers),
        rows=reduction.rows,
        notes=reduction.notes,
        passed=reduction.passed,
    )
