"""``repro.api`` — the stable public surface of the reproduction.

One declarative object, one entry point::

    from repro.api import Scenario, run

    sc = Scenario.workload(
        "drift", algorithm="mtc",
        params={"T": 200, "dim": 1, "D": 4.0, "speed": 0.8},
        seeds=range(8), delta=0.5, ratio="bracket",
    )
    result = run(sc)

A :class:`Scenario` names its request source (workload or adversary
registry entry + params), its algorithm (registry entry + params), the
seed sweep, augmentation and certification mode; :func:`run` dispatches
to the batched lock-step engine or the scalar simulator — bit-identical
either way — and returns a :class:`RunResult`.  Scenarios serialize to
plain JSON (:meth:`Scenario.to_dict`) and carry a content address
(:meth:`Scenario.digest`) in the persistent results store, shared with
the experiment orchestrator's scenario cells.

Prefer this module over importing :mod:`repro.core.simulator` /
:mod:`repro.core.engine` directly: the engines remain public for custom
loops, but everything expressible as *source × algorithm × seeds* should
go through a scenario.
"""

from ..adversaries.registry import (
    ADVERSARIES,
    AdaptiveGame,
    AdversaryInfo,
    BoundAdversary,
    adversary_info,
    available_adversaries,
    make_adversary,
    register_adversary,
)
from ..algorithms.registry import (
    AlgorithmInfo,
    algorithm_info,
    available_algorithms,
    compatible_algorithms,
    make_algorithm,
)
from ..workloads.registry import (
    WORKLOADS,
    WorkloadInfo,
    available_workloads,
    make_workload,
    register_workload,
    workload_info,
)
from .runtime import (
    RunResult,
    build_instances,
    cell_run,
    resolve,
    run,
    run_many,
    scenario_unit,
)
from .scenario import CELL_FN, Scenario, freeze_params, thaw_params

__all__ = [
    "ADVERSARIES",
    "CELL_FN",
    "WORKLOADS",
    "AdaptiveGame",
    "AdversaryInfo",
    "AlgorithmInfo",
    "BoundAdversary",
    "RunResult",
    "Scenario",
    "WorkloadInfo",
    "adversary_info",
    "algorithm_info",
    "available_adversaries",
    "available_algorithms",
    "available_workloads",
    "build_instances",
    "cell_run",
    "compatible_algorithms",
    "freeze_params",
    "make_adversary",
    "make_algorithm",
    "make_workload",
    "register_adversary",
    "register_workload",
    "resolve",
    "run",
    "run_many",
    "scenario_unit",
    "thaw_params",
    "workload_info",
]
