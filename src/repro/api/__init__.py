"""``repro.api`` — the stable public surface of the reproduction.

One declarative object, one entry point::

    from repro.api import Scenario, run

    sc = Scenario.workload(
        "drift", algorithm="mtc",
        params={"T": 200, "dim": 1, "D": 4.0, "speed": 0.8},
        seeds=range(8), delta=0.5, ratio="bracket",
    )
    result = run(sc)

A :class:`Scenario` names its request source (workload or adversary
registry entry + params), its algorithm (registry entry + params), the
seed sweep, augmentation, certification mode and the metric space the
run happens in (``metric="euclidean"|"l1"|"linf"|"graph"``, see
:mod:`repro.core.metric`); :func:`run` dispatches
to the batched lock-step engine or the scalar simulator — bit-identical
either way — and returns a :class:`RunResult`.  Scenarios serialize to
plain JSON (:meth:`Scenario.to_dict`) and carry a content address
(:meth:`Scenario.digest`) in the persistent results store, shared with
the experiment orchestrator's scenario cells.

Sweeps are declarative too: :meth:`Scenario.grid` expands axis values
(sources × algorithms × params × δ) into a
:class:`~repro.api.grid.ScenarioGrid` whose cells keep their standalone
content addresses (shared offline-bracket cells factor out as
address-neutral soft dependencies); :func:`run_many` takes ``jobs=N``
to fan a scenario list over the orchestrator's process pool; and an
:class:`ExperimentSpec` pairs a grid with a registry-addressed reducer
(:mod:`repro.api.reducers`) so a whole experiment is one object:
grid + reducer name + formatting.

Prefer this module over importing :mod:`repro.core.simulator` /
:mod:`repro.core.engine` directly: the engines remain public for custom
loops, but everything expressible as *source × algorithm × seeds* should
go through a scenario.
"""

from ..adversaries.registry import (
    ADVERSARIES,
    AdaptiveGame,
    AdversaryInfo,
    BoundAdversary,
    adversary_info,
    available_adversaries,
    make_adversary,
    register_adversary,
)
from ..algorithms.registry import (
    AlgorithmInfo,
    algorithm_info,
    available_algorithms,
    compatible_algorithms,
    make_algorithm,
)
from ..core.metric import (
    METRICS,
    Metric,
    available_metrics,
    get_metric,
    register_metric,
)
from ..workloads.registry import (
    WORKLOADS,
    WorkloadInfo,
    available_workloads,
    make_workload,
    register_workload,
    workload_info,
)
from .grid import ScenarioGrid, expand_axes, fixed
from .reducers import (
    REDUCERS,
    Reduction,
    ReducerInfo,
    available_reducers,
    reduce_cells,
    reducer_info,
    register_reducer,
)
from .runtime import (
    BRACKET_FN,
    RunResult,
    build_instances,
    cell_brackets,
    cell_run,
    resolve,
    run,
    run_many,
    scenario_unit,
    scenario_units,
)
from .scenario import CELL_FN, Scenario, freeze_params, thaw_params
from .spec import CellSpec, ExperimentSpec, cell_grid, finalize_spec

__all__ = [
    "ADVERSARIES",
    "BRACKET_FN",
    "CELL_FN",
    "METRICS",
    "REDUCERS",
    "WORKLOADS",
    "AdaptiveGame",
    "AdversaryInfo",
    "AlgorithmInfo",
    "BoundAdversary",
    "CellSpec",
    "ExperimentSpec",
    "Metric",
    "Reduction",
    "ReducerInfo",
    "RunResult",
    "Scenario",
    "ScenarioGrid",
    "WorkloadInfo",
    "adversary_info",
    "algorithm_info",
    "available_adversaries",
    "available_algorithms",
    "available_metrics",
    "available_reducers",
    "available_workloads",
    "build_instances",
    "cell_brackets",
    "cell_grid",
    "cell_run",
    "compatible_algorithms",
    "expand_axes",
    "finalize_spec",
    "fixed",
    "freeze_params",
    "get_metric",
    "make_adversary",
    "make_algorithm",
    "make_workload",
    "reduce_cells",
    "reducer_info",
    "register_adversary",
    "register_metric",
    "register_reducer",
    "register_workload",
    "resolve",
    "run",
    "run_many",
    "scenario_unit",
    "scenario_units",
    "thaw_params",
    "workload_info",
]
