"""The :class:`Scenario` dataclass — one declarative description of a run.

A scenario pins down everything the paper's experiments vary: the request
source (a registered workload or adversary plus its parameters), the
algorithm (registry name plus variant parameters), the augmentation
``delta``, an optional cost-model override, the seed sweep, and how to
certify the result (bracketed optimum / adversary cost / nothing).

Scenarios are frozen, hashable and **JSON-serializable**
(:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict`), which gives them
a stable content address (:meth:`Scenario.digest`) in the results store —
the same address whether the scenario is run inline through
:func:`repro.api.run` or as an orchestrator work unit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

import numpy as np

from ..core.store import digest_key

__all__ = ["CELL_FN", "Params", "Scenario", "freeze_params", "thaw_params"]

#: Dotted path of the generic orchestrator cell that executes one
#: scenario; :meth:`Scenario.digest` addresses scenarios exactly as the
#: orchestrator addresses cells built with this function, so inline runs
#: and orchestrated runs share cache entries.
CELL_FN = "repro.api.runtime:cell_run"

#: Canonical frozen parameter form: sorted ``(key, value)`` pairs.
Params = tuple


def _freeze_value(value: Any) -> Any:
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    raise TypeError(
        f"scenario parameters must be JSON-able scalars or lists, got {type(value).__name__}"
    )


def _thaw_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_thaw_value(v) for v in value]
    return value


def freeze_params(params: Mapping[str, Any] | Iterable[tuple[str, Any]] | None,
                  sort: bool = True) -> Params:
    """Canonicalize a parameter mapping into hashable pairs.

    Pairs are sorted by key (the canonical content-address form) unless
    ``sort=False``, which preserves declaration order — used for grid
    axis coordinates, where the axis order *is* the table's row order.
    """
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else list(params)
    out = []
    seen = set()
    for key, value in items:
        key = str(key)
        if key in seen:
            raise ValueError(f"duplicate parameter {key!r}")
        seen.add(key)
        out.append((key, _freeze_value(value)))
    return tuple(sorted(out)) if sort else tuple(out)


def thaw_params(params: Params) -> dict[str, Any]:
    """Frozen pairs back to a keyword-argument dict."""
    return {key: _thaw_value(value) for key, value in params}


_KINDS = ("workload", "adversary")
_RATIOS = ("auto", "adversary", "bracket", "none")
_ENGINES = ("auto", "scalar", "batched")


@dataclass(frozen=True)
class Scenario:
    """A fully declarative description of one simulation sweep.

    Attributes
    ----------
    kind:
        ``"workload"`` (seeded synthetic generator) or ``"adversary"``
        (lower-bound construction).
    source, source_params:
        Registry name and parameters of the request source — instance
        geometry (``T``, ``dim``, ``D``, ``m``) lives here, since it is
        the source that materialises instances.
    algorithm, algorithm_params:
        Algorithm registry name plus variant parameters (e.g.
        ``{"step_scale": 0.25}`` for an MtC ablation).
    seeds:
        The seed sweep; one instance (lane) per seed.
    delta:
        Resource augmentation :math:`\\delta \\ge 0`.
    cost_model:
        Optional override (``"move-first"`` / ``"answer-first"``) applied
        to workload instances; adversary constructions fix their own
        accounting and reject an override.
    ratio:
        How to certify: ``"adversary"`` (cost / adversary cost, a ratio
        lower bound), ``"bracket"`` (certified OPT bracket interval),
        ``"none"``, or ``"auto"`` (adversary sources certify against the
        adversary, workload sources skip certification).
    engine:
        ``"auto"`` lets the dispatcher pick (vectorized lock-step when the
        algorithm advertises a batched implementation, the scalar loop
        otherwise — bit-identical either way); ``"scalar"``/``"batched"``
        force a path.
    metric:
        Name of the registered metric space the run happens in
        (:mod:`repro.core.metric`); ``"euclidean"`` — the default — runs
        the exact pre-metric ℓ2 path and is omitted from the serialized
        form, so every pre-existing scenario digest is unchanged.
    name:
        Optional label for reports.
    """

    source: str
    algorithm: str
    kind: str = "workload"
    source_params: Params = ()
    algorithm_params: Params = ()
    seeds: tuple[int, ...] = (0,)
    delta: float = 0.0
    cost_model: str | None = None
    ratio: str = "auto"
    engine: str = "auto"
    metric: str = "euclidean"
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.ratio not in _RATIOS:
            raise ValueError(f"ratio must be one of {_RATIOS}, got {self.ratio!r}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        from ..core.metric import METRICS

        if self.metric not in METRICS:
            raise ValueError(
                f"metric must be one of {tuple(sorted(METRICS))}, got {self.metric!r}")
        if self.delta < 0:
            raise ValueError(f"delta must be non-negative, got {self.delta}")
        if self.kind == "adversary" and self.cost_model is not None:
            raise ValueError(
                "cost_model overrides are for workload sources; adversary "
                "constructions fix their own accounting (parameterise the "
                "construction instead, e.g. thm3's cost_model param)"
            )
        # freeze_params is idempotent, so both plain mappings and
        # already-frozen pair tuples are accepted here.
        object.__setattr__(self, "source_params", freeze_params(self.source_params))
        object.__setattr__(self, "algorithm_params", freeze_params(self.algorithm_params))
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("a scenario needs at least one seed")
        object.__setattr__(self, "seeds", seeds)

    # -- constructors ------------------------------------------------------

    @classmethod
    def workload(
        cls,
        source: str,
        algorithm: str,
        params: Mapping[str, Any] | None = None,
        algorithm_params: Mapping[str, Any] | None = None,
        seeds: Iterable[int] = (0,),
        delta: float = 0.0,
        cost_model: str | None = None,
        ratio: str = "auto",
        engine: str = "auto",
        metric: str = "euclidean",
        name: str = "",
    ) -> "Scenario":
        """A scenario over a registered workload generator."""
        return cls(
            kind="workload",
            source=source,
            source_params=freeze_params(params),
            algorithm=algorithm,
            algorithm_params=freeze_params(algorithm_params),
            seeds=tuple(seeds),
            delta=delta,
            cost_model=cost_model,
            ratio=ratio,
            engine=engine,
            metric=metric,
            name=name,
        )

    @classmethod
    def adversary(
        cls,
        source: str,
        algorithm: str,
        params: Mapping[str, Any] | None = None,
        algorithm_params: Mapping[str, Any] | None = None,
        seeds: Iterable[int] = (0,),
        delta: float = 0.0,
        ratio: str = "auto",
        engine: str = "auto",
        metric: str = "euclidean",
        name: str = "",
    ) -> "Scenario":
        """A scenario over a registered lower-bound construction."""
        return cls(
            kind="adversary",
            source=source,
            source_params=freeze_params(params),
            algorithm=algorithm,
            algorithm_params=freeze_params(algorithm_params),
            seeds=tuple(seeds),
            delta=delta,
            ratio=ratio,
            engine=engine,
            metric=metric,
            name=name,
        )

    @classmethod
    def grid(cls, source, algorithm, **kwargs: Any):
        """Expand axis values into a sweep (see :mod:`repro.api.grid`).

        ``source``, ``algorithm``, ``delta``, ``cost_model`` and any value
        inside ``params`` / ``algorithm_params`` become axes when given a
        sequence; the Cartesian product (first axis outermost) is returned
        as a :class:`~repro.api.grid.ScenarioGrid` of content-addressed
        scenarios.  ``seeds`` stays the per-scenario lane sweep.  Wrap a
        literal list parameter in :func:`repro.api.grid.fixed` to keep it
        out of the product.

        >>> g = Scenario.grid("drift", ["mtc", "greedy-centroid"],
        ...                   params={"T": 100, "dim": 1, "D": 2.0},
        ...                   delta=[0.25, 0.5], seeds=range(4),
        ...                   ratio="bracket")
        >>> len(g), g.axes
        (4, ('algorithm', 'delta'))
        """
        from .grid import build_grid

        return build_grid(source, algorithm, **kwargs)

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with fields replaced (params accept plain dicts)."""
        for key in ("source_params", "algorithm_params"):
            if key in changes:
                changes[key] = freeze_params(changes[key])
        return replace(self, **changes)

    # -- derived views -----------------------------------------------------

    @property
    def batch_size(self) -> int:
        return len(self.seeds)

    def source_kwargs(self) -> dict[str, Any]:
        return thaw_params(self.source_params)

    def algorithm_kwargs(self) -> dict[str, Any]:
        return thaw_params(self.algorithm_params)

    def effective_ratio(self) -> str:
        """Resolve ``"auto"``: adversaries certify, workloads don't."""
        if self.ratio != "auto":
            return self.ratio
        return "adversary" if self.kind == "adversary" else "none"

    def label(self) -> str:
        return self.name or f"{self.source}/{self.algorithm}"

    # -- serialization -----------------------------------------------------

    def cache_dict(self) -> dict[str, Any]:
        """The JSON payload that identifies this scenario in the store.

        Exactly :meth:`to_dict` minus the cosmetic ``name`` label, so two
        scenarios that differ only in display name share one cache entry
        (and relabelling a sweep cell does not invalidate its cache).
        """
        payload = self.to_dict()
        del payload["name"]
        return payload

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able dict (inverse of :meth:`from_dict`).

        The ``metric`` key is present only when it differs from
        ``"euclidean"`` — default-metric scenarios serialize exactly as
        they did before metrics existed, so their digests (and store
        entries) are stable across the refactor.
        """
        payload = {
            "kind": self.kind,
            "source": self.source,
            "source_params": thaw_params(self.source_params),
            "algorithm": self.algorithm,
            "algorithm_params": thaw_params(self.algorithm_params),
            "seeds": list(self.seeds),
            "delta": self.delta,
            "cost_model": self.cost_model,
            "ratio": self.ratio,
            "engine": self.engine,
            "name": self.name,
        }
        if self.metric != "euclidean":
            payload["metric"] = self.metric
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        return cls(
            kind=payload.get("kind", "workload"),
            source=payload["source"],
            source_params=freeze_params(payload.get("source_params")),
            algorithm=payload["algorithm"],
            algorithm_params=freeze_params(payload.get("algorithm_params")),
            seeds=tuple(payload.get("seeds", (0,))),
            delta=payload.get("delta", 0.0),
            cost_model=payload.get("cost_model"),
            ratio=payload.get("ratio", "auto"),
            engine=payload.get("engine", "auto"),
            metric=payload.get("metric", "euclidean"),
            name=payload.get("name", ""),
        )

    def digest(self) -> str:
        """Content address in the results store.

        Matches the address of the orchestrator work unit built by
        :func:`repro.api.scenario_unit` (``fn=CELL_FN``, params =
        :meth:`cache_dict`), so a scenario computed by a sweep is a cache
        hit for an inline :func:`repro.api.run_many` with a store, and
        vice versa.  The display ``name`` is excluded; the ``engine``
        field is deliberately part of the address even though both
        engines produce bit-identical costs — entries then record
        exactly how they were computed.
        """
        return digest_key(CELL_FN, {"scenario": self.cache_dict()})
