"""Scenario execution: one ``run()`` over both engines.

:func:`run` takes a :class:`~repro.api.scenario.Scenario`, materialises
its instances from the workload/adversary registries, validates the
algorithm's capability metadata against the source, dispatches to the
batched lock-step engine (when the algorithm's registry entry advertises
a vectorized implementation) or the scalar simulator (bit-identical
fallback), certifies ratios as requested, and returns a
:class:`RunResult`.

:func:`run_many` runs a list of scenarios, sharing instance
materialisation and offline brackets across scenarios that differ only
in the algorithm (the CLI ``compare`` pattern), and optionally
round-trips results through a persistent
:class:`~repro.core.store.ResultsStore` keyed by each scenario's content
digest.

:func:`cell_run` is the orchestrator work-unit entry point: experiments
that declare their sweeps as scenarios get content-addressed caching and
process fan-out without any experiment-specific cell code.

Both entry points *mega-batch*: scenario cells that run on the batched
engine under the same algorithm and instance shape — differing only in
seed, source, δ or cost model — are packed into one wide
:func:`~repro.core.engine.simulate_batch` call and split back per cell
(:func:`_execute_scenarios`).  Every lane computes bit-identically to its
standalone run (the engine's arithmetic is per-lane), so each cell keeps
its standalone store digest, payload and cache address; ``--no-fuse``
(:func:`repro.core.kernels.set_fusion`) disables the packing together
with the fused kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Mapping, Sequence

import numpy as np

from ..adversaries.base import AdversarialInstance
from ..adversaries.registry import AdaptiveGame, adversary_info, make_adversary
from ..algorithms.registry import AlgorithmInfo, algorithm_info, make_algorithm
from ..analysis.ratio import (
    RatioMeasurement,
    measures_from_payload,
    measures_to_payload,
)
from ..core.engine import simulate_batch
from ..core.instance import MovingClientInstance, MSPInstance
from ..core.metric import Metric, get_metric
from ..core.simulator import simulate
from ..core.store import ResultsStore
from ..core.trace import Trace
from ..offline.bounds import OptBracket, bracket_optimum
from ..workloads.registry import make_workload, workload_info
from .scenario import CELL_FN, Scenario

__all__ = [
    "BRACKET_FN",
    "RunResult",
    "build_instances",
    "cell_brackets",
    "cell_run",
    "resolve",
    "run",
    "run_many",
    "scenario_unit",
    "scenario_units",
]

#: Dotted path of the ephemeral cell computing a share-group's offline
#: brackets (factored out of scenario sweeps as a *soft* dependency).
BRACKET_FN = "repro.api.runtime:cell_brackets"


def resolve(name: str, **params: Any) -> Any:
    """Instantiate a registered request source by name.

    Searches the workload registry first, then the adversary registry:
    returns a ready workload generator (``generate(rng)``), a
    :class:`~repro.adversaries.registry.BoundAdversary` (call with an rng
    to draw an :class:`~repro.adversaries.base.AdversarialInstance`), or
    an :class:`~repro.adversaries.registry.AdaptiveGame`.
    """
    from ..adversaries.registry import ADVERSARIES
    from ..workloads.registry import WORKLOADS

    if name in WORKLOADS:
        return make_workload(name, **params)
    if name in ADVERSARIES:
        return make_adversary(name, **params)
    known = sorted(WORKLOADS) + sorted(ADVERSARIES)
    raise KeyError(f"unknown source {name!r}; available: {', '.join(known)}")


@dataclass
class RunResult:
    """Everything one scenario run produced.

    Attributes
    ----------
    scenario:
        The scenario that was run.
    costs:
        ``(B,)`` total cost per seed (bit-identical across engines).
    ratios:
        Certified ratio lower bounds per seed (``cost / adversary cost``)
        when the scenario certifies against an adversary, else ``None``.
    measurements:
        Per-seed :class:`~repro.analysis.ratio.RatioMeasurement` interval
        certificates when the scenario certifies against a bracketed
        optimum, else ``None``.
    traces:
        Full per-seed traces (``None`` when the result was reloaded from
        a store payload, which keeps only the scalar summaries).
    engine:
        ``"scalar"`` or ``"batched"`` — which path actually ran.
    elapsed:
        Wall-clock seconds of the run (0.0 for cache hits).
    cached:
        Whether this result came out of the store instead of being
        computed by this call (transient — not part of the payload).
    """

    scenario: Scenario
    costs: np.ndarray
    ratios: np.ndarray | None = None
    measurements: list[RatioMeasurement] | None = None
    traces: list[Trace] | None = None
    engine: str = "scalar"
    elapsed: float = 0.0
    cached: bool = False

    @property
    def batch_size(self) -> int:
        return int(self.costs.shape[0])

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean())

    @property
    def mean_ratio(self) -> float:
        """Mean certified adversarial ratio lower bound over the seeds."""
        if self.ratios is None:
            raise ValueError(f"scenario {self.scenario.label()!r} did not certify against an adversary")
        return float(self.ratios.mean())

    @property
    def ratio_lower(self) -> np.ndarray:
        """``(B,)`` certified lower ends ``cost / opt_upper``."""
        if self.measurements is None:
            raise ValueError(f"scenario {self.scenario.label()!r} has no bracket measurements")
        return np.array([m.ratio_lower for m in self.measurements])

    @property
    def ratio_upper(self) -> np.ndarray:
        """``(B,)`` certified upper ends ``cost / opt_lower``."""
        if self.measurements is None:
            raise ValueError(f"scenario {self.scenario.label()!r} has no bracket measurements")
        return np.array([m.ratio_upper for m in self.measurements])

    def certified_ratio(self) -> float | None:
        """The one certified mean ratio of this run, if any.

        Adversary runs certify a lower bound (``mean_ratio``); bracket
        runs certify an interval, whose conservative end is the upper
        bracket mean; uncertified runs return ``None``.
        """
        if self.ratios is not None:
            return self.mean_ratio
        if self.measurements is not None:
            return float(self.ratio_upper.mean())
        return None

    def table_columns(self) -> list:
        """``[mean cost, ratio >=, ratio <=]`` in the shared table layout.

        One definition of the certified-ratio column convention, used by
        both the CLI ``run --grid`` table and the ``scenario-table``
        reducer: adversary runs fill only the lower bound, bracket runs
        fill the interval, uncertified runs leave both blank.
        """
        if self.ratios is not None:
            return [self.mean_cost, self.mean_ratio, ""]
        if self.measurements is not None:
            return [self.mean_cost, float(self.ratio_lower.mean()),
                    float(self.ratio_upper.mean())]
        return [self.mean_cost, "", ""]

    def summary(self) -> str:
        parts = [
            f"{self.scenario.label()}: B={self.batch_size}",
            f"engine={self.engine}",
            f"mean cost {self.mean_cost:.4g}",
        ]
        if self.ratios is not None:
            parts.append(f"ratio >= {self.mean_ratio:.4g}")
        if self.measurements is not None:
            parts.append(
                f"ratio in [{float(self.ratio_lower.mean()):.4g}, "
                f"{float(self.ratio_upper.mean()):.4g}]"
            )
        parts.append(f"{self.elapsed:.3f}s")
        return ", ".join(parts)

    # -- store round-trip --------------------------------------------------

    def as_payload(self) -> dict[str, Any]:
        """Store-compatible payload (exact costs/ratios; traces dropped)."""
        return {
            "scenario": self.scenario.to_dict(),
            "engine": self.engine,
            "elapsed": self.elapsed,
            "costs": np.asarray(self.costs, dtype=np.float64),
            "ratios": None if self.ratios is None else np.asarray(self.ratios, dtype=np.float64),
            "measures": None if self.measurements is None else measures_to_payload(self.measurements),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunResult":
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            costs=payload["costs"],
            ratios=payload["ratios"],
            measurements=None if payload["measures"] is None
            else measures_from_payload(payload["measures"]),
            traces=None,
            engine=payload["engine"],
            elapsed=float(payload["elapsed"]),
        )


# -- materialisation -------------------------------------------------------


def _source_info(scenario: Scenario):
    if scenario.kind == "workload":
        return workload_info(scenario.source)
    return adversary_info(scenario.source)


def _materialise(
    kind: str,
    source_name: str,
    source_params: Mapping[str, Any],
    seeds: Sequence[int],
    cost_model: str | None,
) -> tuple[list[MSPInstance], list[AdversarialInstance] | None]:
    """Shared instance materialisation for scenarios and bracket cells."""
    source = resolve(source_name, **dict(source_params))
    if isinstance(source, AdaptiveGame):
        raise ValueError(
            f"adaptive source {source_name!r} has no pre-built instances; "
            "its instances exist only after the game is played"
        )
    if kind == "adversary":
        advs = [source.build(np.random.default_rng(s)) for s in seeds]
        return [adv.instance for adv in advs], advs
    instances = []
    for seed in seeds:
        inst = source.generate(np.random.default_rng(seed))
        if isinstance(inst, MovingClientInstance):
            inst = inst.as_msp()
        if cost_model is not None:
            inst = inst.with_cost_model(_cost_model(cost_model))
        instances.append(inst)
    return instances, None


def build_instances(
    scenario: Scenario,
) -> tuple[list[MSPInstance], list[AdversarialInstance] | None]:
    """Materialise the scenario's per-seed instances.

    Returns the (lowered, cost-model-adjusted) :class:`MSPInstance` list
    ready for either engine, plus the adversarial wrappers when the
    source is an oblivious construction (``None`` for workloads).
    Moving-client instances are lowered via ``as_msp()`` exactly as
    :func:`repro.core.simulator.simulate_moving_client` does.
    """
    return _materialise(scenario.kind, scenario.source, scenario.source_kwargs(),
                        scenario.seeds, scenario.cost_model)


def _cost_model(value: str):
    from ..core.costs import CostModel

    return CostModel(value)


def _resolve_metric(scenario: Scenario) -> Metric | None:
    """The scenario's metric instance, or ``None`` for the default.

    ``None`` (euclidean) makes both engines run the exact pre-metric ℓ2
    hot path.  For the ``graph`` metric the workload's attached metric
    wins over the registry default, so a ``graph-dc`` scenario measures
    distances on the data-center fabric its requests live on rather than
    on the default road network.
    """
    if scenario.metric == "euclidean":
        return None
    metric = get_metric(scenario.metric)
    if scenario.kind == "workload":
        source = resolve(scenario.source, **scenario.source_kwargs())
        attached = getattr(source, "metric", None)
        if isinstance(attached, Metric) and attached.name == scenario.metric:
            metric = attached
    return metric


def _check_compatibility(scenario: Scenario, info: AlgorithmInfo, instances: Sequence[MSPInstance]) -> None:
    source_info = _source_info(scenario)
    if info.requires_moving_client and not source_info.moving_client:
        raise ValueError(
            f"algorithm {info.name!r} requires a moving-client source; "
            f"{scenario.kind} {scenario.source!r} is not one"
        )
    if scenario.metric != "euclidean":
        if scenario.kind == "adversary":
            raise ValueError(
                f"adversary constructions are Euclidean lower bounds; "
                f"metric={scenario.metric!r} is not available for source "
                f"{scenario.source!r}"
            )
        if not info.supports_metric(scenario.metric):
            raise ValueError(
                f"algorithm {info.name!r} does not support the "
                f"{scenario.metric!r} metric (supported: {info.metrics})"
            )
        if not source_info.supports_metric(scenario.metric):
            raise ValueError(
                f"workload {scenario.source!r} does not generate "
                f"{scenario.metric!r}-space requests (supported: "
                f"{source_info.metrics})"
            )
        if scenario.effective_ratio() == "bracket":
            raise ValueError(
                "the offline bracket solver is Euclidean-only; use "
                "ratio='none' with a non-euclidean metric"
            )
    else:
        if not info.supports_metric("euclidean"):
            raise ValueError(
                f"algorithm {info.name!r} only plays under the "
                f"{info.metrics} metric(s); pass metric= explicitly"
            )
        if scenario.kind == "workload" and not source_info.supports_metric("euclidean"):
            raise ValueError(
                f"workload {scenario.source!r} generates requests for the "
                f"{source_info.metrics} metric(s); pass metric= explicitly"
            )
    for inst in instances:
        if not info.supports_dim(inst.dim):
            raise ValueError(
                f"algorithm {info.name!r} does not support dim={inst.dim} "
                f"(supported: {info.supported_dims})"
            )
        if not info.supports_cost_model(inst.cost_model):
            raise ValueError(
                f"algorithm {info.name!r} does not play the "
                f"{inst.cost_model.value!r} cost model (supported: {info.cost_models})"
            )


def _choose_engine(scenario: Scenario, info: AlgorithmInfo, instances: Sequence[MSPInstance]) -> str:
    if scenario.engine != "auto":
        return scenario.engine
    if scenario.algorithm_params:
        # Vectorized implementations are registered for the default
        # parameterisation only; variants run through the scalar loop.
        return "scalar"
    if not info.vectorized:
        return "scalar"
    if len(instances) < 2:
        return "scalar"
    if len({inst.length for inst in instances}) != 1:
        return "scalar"  # ragged draws cannot share a lock-step pass
    return "batched"


# -- execution -------------------------------------------------------------


def _run_adaptive(scenario: Scenario, t0: float) -> RunResult:
    game = resolve(scenario.source, **scenario.source_kwargs())
    # The adaptive game is fully deterministic given the algorithm (even
    # the registered randomized algorithms reseed per factory call), so
    # one play is broadcast across the seed axis instead of replaying the
    # identical game per seed.
    outcome = game.play(
        make_algorithm(scenario.algorithm, **scenario.algorithm_kwargs()),
        delta=scenario.delta,
    )
    B = len(scenario.seeds)
    costs = np.full(B, outcome.algorithm_cost)
    ratios = np.full(B, outcome.ratio)
    ratio_mode = scenario.effective_ratio()
    return RunResult(
        scenario=scenario,
        costs=costs,
        ratios=ratios if ratio_mode == "adversary" else None,
        measurements=None,
        traces=None,
        engine="scalar",
        elapsed=perf_counter() - t0,
    )


def _bracket_measurements(
    scenario: Scenario,
    instances: Sequence[MSPInstance],
    costs: np.ndarray,
    algorithm_name: str,
    brackets: Sequence[OptBracket] | None,
) -> list[RatioMeasurement]:
    if brackets is None:
        brackets = [bracket_optimum(inst) for inst in instances]
    elif len(brackets) != len(instances):
        raise ValueError("need exactly one bracket per instance")
    out = []
    # Same interval arithmetic as analysis.ratio.measure_ratio{,_batch},
    # so API results are interchangeable with the legacy helpers.
    for i, bracket in enumerate(brackets):
        lower = max(bracket.lower, 1e-300)
        upper = max(bracket.upper, 1e-300)
        cost = float(costs[i])
        out.append(
            RatioMeasurement(
                cost=cost,
                opt_lower=bracket.lower,
                opt_upper=bracket.upper,
                ratio_lower=cost / upper,
                ratio_upper=cost / lower,
                algorithm=algorithm_name,
            )
        )
    return out


def _certify(
    scenario: Scenario,
    instances: Sequence[MSPInstance],
    adversarials: Sequence[AdversarialInstance] | None,
    brackets: Sequence[OptBracket] | None,
    costs: np.ndarray,
    algorithm_name: str,
) -> tuple[np.ndarray | None, list[RatioMeasurement] | None]:
    """The scenario's requested certification of its per-seed costs."""
    ratio_mode = scenario.effective_ratio()
    if ratio_mode == "adversary":
        if adversarials is None:
            raise ValueError(
                f"scenario {scenario.label()!r} asks for adversary certification "
                "but its source is a workload (use ratio='bracket' or 'none')"
            )
        return np.array([adv.ratio_of(float(c)) for adv, c in zip(adversarials, costs)]), None
    if ratio_mode == "bracket":
        return None, _bracket_measurements(scenario, instances, costs, algorithm_name, brackets)
    return None, None


def run(
    scenario: Scenario,
    *,
    instances: Sequence[MSPInstance] | None = None,
    adversarials: Sequence[AdversarialInstance] | None = None,
    brackets: Sequence[OptBracket] | None = None,
    keep_traces: bool = True,
) -> RunResult:
    """Execute one scenario and return its :class:`RunResult`.

    The keyword arguments let :func:`run_many` (and tests) inject
    pre-materialised instances and offline brackets; ordinary callers
    pass just the scenario.
    """
    t0 = perf_counter()
    info = algorithm_info(scenario.algorithm)
    if scenario.kind == "adversary" and adversary_info(scenario.source).adaptive:
        if scenario.engine == "batched":
            raise ValueError("adaptive adversaries play move-by-move; engine='batched' is impossible")
        if scenario.metric != "euclidean":
            raise ValueError(
                f"adaptive adversaries play in Euclidean space; "
                f"metric={scenario.metric!r} is not available"
            )
        return _run_adaptive(scenario, t0)

    if instances is None:
        instances, adversarials = build_instances(scenario)
    else:
        instances = list(instances)
    _check_compatibility(scenario, info, instances)
    engine = _choose_engine(scenario, info, instances)
    metric = _resolve_metric(scenario)

    if engine == "batched":
        batch = simulate_batch(
            instances,
            scenario.algorithm if not scenario.algorithm_params
            else (lambda: make_algorithm(scenario.algorithm, **scenario.algorithm_kwargs())),
            delta=scenario.delta,
            metric=metric,
        )
        costs = batch.total_costs
        traces = batch.traces() if keep_traces else None
        algorithm_name = batch.algorithm
    else:
        traces_all = [
            simulate(
                inst,
                make_algorithm(scenario.algorithm, **scenario.algorithm_kwargs()),
                delta=scenario.delta,
                metric=metric,
            )
            for inst in instances
        ]
        costs = np.array([tr.total_cost for tr in traces_all])
        algorithm_name = traces_all[0].algorithm
        traces = traces_all if keep_traces else None

    ratios, measurements = _certify(scenario, instances, adversarials, brackets,
                                    costs, algorithm_name)

    return RunResult(
        scenario=scenario,
        costs=np.asarray(costs, dtype=np.float64),
        ratios=ratios,
        measurements=measurements,
        traces=traces,
        engine=engine,
        elapsed=perf_counter() - t0,
    )


def _share_key(scenario: Scenario) -> tuple:
    """Scenarios agreeing on this key see identical instances."""
    return (scenario.kind, scenario.source, scenario.source_params,
            scenario.seeds, scenario.cost_model)


# -- cross-cell mega-batching ----------------------------------------------


def _mega_key(scenario: Scenario, instances: Sequence[MSPInstance]) -> tuple | None:
    """Grouping key for one wide ``simulate_batch`` call, or ``None``.

    Cells agreeing on this key — same algorithm, same instance shape —
    can run as lanes of a single batched-engine pass: the engine's
    arithmetic is strictly per-lane (source, seed, δ and cost model all
    become per-lane data), so each cell's slice of the wide trace is
    bit-identical to its standalone run.  ``None`` means the cell cannot
    join a group (non-uniform dims would not survive the engine anyway).
    Non-euclidean cells never join a group: the metric instance is a
    batch-wide argument (two ``graph`` scenarios may live on different
    topologies), so they run standalone.
    """
    if scenario.metric != "euclidean":
        return None
    dims = {inst.dim for inst in instances}
    if len(dims) != 1:
        return None
    return (scenario.algorithm, instances[0].length, next(iter(dims)))


def _run_mega_group(
    entries: Sequence[tuple[int, Scenario, list[MSPInstance],
                            "list[AdversarialInstance] | None",
                            "Sequence[OptBracket] | None"]],
    keep_traces: bool = False,
) -> list[tuple[int, RunResult]]:
    """One wide ``simulate_batch`` pass over several compatible cells.

    Lanes are the concatenated per-cell instances with a per-lane δ
    vector; the trace is split back at the cell offsets.  Costs, ratios
    and bracket measurements are computed per cell exactly as
    :func:`run` would, so payloads (and therefore store entries) match
    the unbatched path bit-for-bit; only ``elapsed`` (wall-clock, a
    proportional share of the group pass) differs.
    """
    t0 = perf_counter()
    all_instances = [inst for _, _, instances, _, _ in entries for inst in instances]
    deltas = np.concatenate([
        np.full(len(instances), scenario.delta)
        for _, scenario, instances, _, _ in entries
    ])
    batch = simulate_batch(all_instances, entries[0][1].algorithm, delta=deltas)
    elapsed = perf_counter() - t0
    share = elapsed / len(all_instances)

    out: list[tuple[int, RunResult]] = []
    offset = 0
    for index, scenario, instances, adversarials, brackets in entries:
        n = len(instances)
        lanes = slice(offset, offset + n)
        offset += n
        costs = np.asarray(batch.total_costs[lanes], dtype=np.float64)
        ratios, measurements = _certify(scenario, instances, adversarials,
                                        brackets, costs, batch.algorithm)
        traces = [batch.trace(lane) for lane in range(lanes.start, lanes.stop)] \
            if keep_traces else None
        out.append((index, RunResult(
            scenario=scenario,
            costs=costs,
            ratios=ratios,
            measurements=measurements,
            traces=traces,
            engine="batched",
            elapsed=share * n,
        )))
    return out


def _execute_scenarios(
    pending: Sequence[tuple[int, Scenario]],
    keep_traces: bool = False,
    brackets: Mapping[int, "Sequence[OptBracket]"] | None = None,
) -> dict[int, RunResult]:
    """Run index-tagged scenarios, mega-batching compatible cells.

    The shared entry point behind inline :func:`run_many` and the
    orchestrator's grouped scenario cells (:func:`_cell_run_group`):
    materialises instances (shared across scenarios with equal
    :func:`_share_key`, solving each bracket group once), then packs
    cells that would run on the batched engine into one
    :func:`simulate_batch` call per :func:`_mega_key` group.  ``brackets``
    optionally injects pre-solved brackets per index (the orchestrator's
    soft-dependency payloads).  Results are bit-identical to per-scenario
    :func:`run` calls in any order; fusion off
    (:func:`repro.core.kernels.fusion_enabled`) disables the packing.
    """
    from ..core.kernels import fusion_enabled

    overrides = dict(brackets or {})
    share: dict[tuple, tuple] = {}
    groups: dict[tuple, list] = {}
    singles: list[tuple] = []
    out: dict[int, RunResult] = {}
    for index, scenario in pending:
        if scenario.kind == "adversary" and adversary_info(scenario.source).adaptive:
            out[index] = run(scenario, keep_traces=keep_traces)
            continue
        key = _share_key(scenario)
        if key not in share:
            share[key] = (*build_instances(scenario), None)
        instances, advs, shared_brackets = share[key]
        cell_brackets = overrides.get(index)
        if cell_brackets is None and scenario.effective_ratio() == "bracket":
            if shared_brackets is None:
                shared_brackets = [bracket_optimum(inst) for inst in instances]
                share[key] = (instances, advs, shared_brackets)
            cell_brackets = shared_brackets
        entry = (index, scenario, instances, advs, cell_brackets)
        mega = _mega_key(scenario, instances) if fusion_enabled() else None
        if mega is not None and _choose_engine(
                scenario, algorithm_info(scenario.algorithm), instances) == "batched":
            groups.setdefault(mega, []).append(entry)
        else:
            singles.append(entry)
    for group in groups.values():
        if len(group) == 1:
            singles.append(group[0])
            continue
        for index, result in _run_mega_group(group, keep_traces=keep_traces):
            out[index] = result
    for index, scenario, instances, advs, cell_brackets in singles:
        out[index] = run(scenario, instances=instances, adversarials=advs,
                         brackets=cell_brackets, keep_traces=keep_traces)
    return out


def _run_many_pooled(
    scenarios: Sequence[Scenario],
    jobs: int,
    store: ResultsStore | None,
    executor: Any = None,
) -> list[RunResult]:
    """Fan a scenario list out over an orchestrator execution backend.

    Each scenario becomes a work unit with its standalone content address
    (:meth:`Scenario.digest`), shared bracket cells factored out as soft
    dependencies — exactly the plumbing orchestrated sweeps use, so the
    pooled path inherits their caching, dedup and resume behaviour
    whether the cells run in a local process pool or on remote spool
    workers.
    """
    from ..experiments.orchestrator import SweepSpec, execute

    keys = [f"s{i}" for i in range(len(scenarios))]
    units = scenario_units(scenarios, keys=keys)
    spec = SweepSpec("run-many", tuple(units),
                     finalize="repro.api.runtime:_collect_payloads")
    report = execute([spec], jobs=jobs, store=store, executor=executor)
    payloads = report.results[0]
    results = []
    for key in keys:
        result = RunResult.from_payload(payloads[key])
        # Timings list exactly the cells computed this run; everything
        # else was a (validity-checked) cache hit or an in-run twin.
        result.cached = f"run-many/{key}" not in report.timings
        results.append(result)
    return results


def run_many(
    scenarios: Sequence[Scenario],
    *,
    store: ResultsStore | None = None,
    keep_traces: bool = False,
    jobs: int = 1,
    executor: Any = None,
) -> list[RunResult]:
    """Run several scenarios, sharing instances and offline brackets.

    Scenarios that differ only in the algorithm (the ``compare`` pattern)
    materialise their instances once and — when any of them certifies
    against a bracketed optimum — solve each instance's offline bracket
    once, not once per algorithm.

    With a ``store``, each scenario is looked up by its content digest
    first and fresh results are written back, so repeated comparisons are
    cache hits (the addresses are shared with orchestrator scenario
    cells).  Results loaded from the store carry no traces.

    ``jobs > 1`` fans the scenarios out over the orchestrator's process
    pool (same work-unit plumbing, same content addresses — results are
    bit-identical to ``jobs=1``); bracket sharing then happens through
    factored-out soft-dependency cells rather than in-process.  An
    explicit ``executor`` (``"inline"``, ``"process"``, or an
    :class:`~repro.experiments.executors.Executor` instance — the spool
    backend needs its directory, so pass a constructed
    :class:`~repro.experiments.executors.SpoolExecutor`, not the name)
    routes through the same plumbing regardless of ``jobs``.  Worker
    payloads carry only the scalar summaries, so ``keep_traces=True``
    is rejected with a ``ValueError`` on any non-inline path.
    """
    from ..experiments.executors import InlineExecutor, make_executor

    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if executor is not None:
        backend = make_executor(executor, jobs=jobs)
        if isinstance(backend, InlineExecutor) and jobs > 1:
            raise ValueError("executor='inline' runs scenarios sequentially; "
                             "drop jobs or pick another executor")
        pooled = not isinstance(backend, InlineExecutor) and len(scenarios) > 0
    else:
        backend = None
        pooled = jobs > 1 and len(scenarios) > 1
    if pooled:
        if keep_traces:
            raise ValueError("keep_traces is unavailable with jobs > 1 or a "
                             "non-inline executor (worker payloads carry only "
                             "the scalar summaries)")
        return _run_many_pooled(scenarios, jobs=jobs, store=store, executor=backend)
    results: list[RunResult | None] = [None] * len(scenarios)
    pending: list[tuple[int, Scenario]] = []
    for i, scenario in enumerate(scenarios):
        if store is not None:
            payload = store.load_or_none(scenario.digest())
            if payload is not None:
                result = RunResult.from_payload(payload)
                result.cached = True
                results[i] = result
                continue
        pending.append((i, scenario))
    executed = _execute_scenarios(pending, keep_traces=keep_traces)
    for i, scenario in pending:
        result = executed[i]
        if store is not None:
            store.save(scenario.digest(), result.as_payload(),
                       extra_meta={"kind": "scenario", "label": scenario.label()})
        results[i] = result
    return results


# -- orchestrator integration ----------------------------------------------


def cell_brackets(
    kind: str,
    source: str,
    source_params: Mapping[str, Any],
    seeds: Sequence[int],
    cost_model: str | None,
) -> dict[str, Any]:
    """Ephemeral cell: offline brackets of one share-group's instances.

    The payload is a deterministic function of the parameters (which are
    a subset of every consuming scenario's own parameters), which is what
    licenses attaching it as a *soft* dependency: scenario cells keep
    their standalone content addresses whether or not the bracket cell
    feeds them.
    """
    instances, _ = _materialise(kind, source, source_params, seeds, cost_model)
    return {"brackets": [bracket_optimum(inst).as_payload() for inst in instances]}


def _bracket_group(scenario: Scenario) -> dict[str, Any]:
    """The bracket cell's parameters for ``scenario``'s share group."""
    return {
        "kind": scenario.kind,
        "source": scenario.source,
        "source_params": scenario.source_kwargs(),
        "seeds": list(scenario.seeds),
        "cost_model": scenario.cost_model,
    }


def cell_run(scenario: Mapping[str, Any], deps: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """Generic orchestrator cell: execute one serialized scenario.

    The cell's content address (``fn`` + the scenario dict) equals
    :meth:`Scenario.digest`, so orchestrated sweeps and inline
    :func:`run_many` calls share store entries.  A factored-out bracket
    cell may feed in through ``deps`` (as a soft dependency — the
    address does not change): its certified brackets are then reused
    instead of re-solved.
    """
    # Non-bracket dependencies (the public ``deps`` on scenario_unit)
    # are simply not consumed here.
    return run(Scenario.from_dict(scenario), brackets=_cell_brackets_of(deps),
               keep_traces=False).as_payload()


def _cell_brackets_of(deps: Mapping[str, Any] | None):
    """The bracket soft-dependency payload of one scenario cell, if any."""
    if not deps:
        return None
    payload = next((p for p in deps.values() if "brackets" in p), None)
    if payload is None:
        return None
    return [OptBracket.from_payload(b) for b in payload["brackets"]]


def _cell_run_group(calls: Sequence[tuple[Mapping[str, Any], Mapping[str, Any] | None]]):
    """Grouped executor entry point: several :func:`cell_run` cells at once.

    The inline executor hands over the ready scenario cells of a sweep as
    ``(params, deps)`` pairs; compatible cells are mega-batched through
    one :func:`simulate_batch` call per group.  Payloads come back in
    call order and are bit-identical to per-cell :func:`cell_run` (which
    is what licenses the grouping: every cell keeps its standalone
    content address).
    """
    pending: list[tuple[int, Scenario]] = []
    overrides: dict[int, Any] = {}
    for i, (params, deps) in enumerate(calls):
        pending.append((i, Scenario.from_dict(params["scenario"])))
        brackets = _cell_brackets_of(deps)
        if brackets is not None:
            overrides[i] = brackets
    executed = _execute_scenarios(pending, keep_traces=False, brackets=overrides)
    return [executed[i].as_payload() for i in range(len(calls))]


cell_run.group_runner = _cell_run_group


def scenario_unit(key: str, scenario: Scenario, deps: tuple[str, ...] = (),
                  soft_deps: tuple[str, ...] = ()):
    """A :class:`~repro.experiments.orchestrator.WorkUnit` running ``scenario``.

    The unit's parameters are :meth:`Scenario.cache_dict` (display name
    stripped), so its orchestrator content address equals
    :meth:`Scenario.digest` — sweeps and inline runs share store entries
    (soft dependencies, e.g. a shared bracket cell, do not perturb it).
    """
    from ..experiments.orchestrator import WorkUnit

    return WorkUnit(key=key, fn=CELL_FN, params={"scenario": scenario.cache_dict()},
                    deps=deps, soft_deps=soft_deps)


def scenario_units(
    scenarios: Sequence[Scenario],
    keys: Sequence[str] | None = None,
    share_brackets: bool = True,
):
    """Work units for a scenario list, shared bracket cells factored out.

    Scenarios certifying against a bracketed optimum that agree on
    (source, params, seeds, cost model) get one ephemeral
    :func:`cell_brackets` unit per group (only when the group has at
    least two members — a lone scenario solves its brackets inline) and
    consume it as a soft dependency, so the expensive offline solve runs
    once per group instead of once per algorithm/δ cell.
    """
    from ..experiments.orchestrator import WorkUnit

    if keys is not None and len(keys) != len(scenarios):
        raise ValueError("need exactly one key per scenario")
    if keys is None:
        keys = [f"s{i}" for i in range(len(scenarios))]
    if len(set(keys)) != len(keys):
        raise ValueError("scenario unit keys must be unique")

    def shareable(sc: Scenario) -> bool:
        return (sc.effective_ratio() == "bracket"
                and not (sc.kind == "adversary" and adversary_info(sc.source).adaptive))

    group_sizes: dict[tuple, int] = {}
    for sc in scenarios:
        if shareable(sc):
            key = _share_key(sc)
            group_sizes[key] = group_sizes.get(key, 0) + 1

    units = []
    bracket_keys: dict[tuple, str] = {}
    for key, sc in zip(keys, scenarios):
        soft: tuple[str, ...] = ()
        if share_brackets and shareable(sc) and group_sizes[_share_key(sc)] > 1:
            skey = _share_key(sc)
            if skey not in bracket_keys:
                bracket_key = f"brackets/{len(bracket_keys)}"
                bracket_keys[skey] = bracket_key
                units.append(WorkUnit(key=bracket_key, fn=BRACKET_FN,
                                      params=_bracket_group(sc), ephemeral=True))
            soft = (bracket_keys[skey],)
        units.append(scenario_unit(key, sc, soft_deps=soft))
    return units


def _collect_payloads(results: Mapping[str, Any], scale: float, seed: int) -> dict[str, Any]:
    """Finalize hook for pooled :func:`run_many`: the raw payload map."""
    return dict(results)
