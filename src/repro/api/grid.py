"""``Scenario.grid(...)`` — declarative sweep expansion.

A *grid* is the shape every experiment in the paper reduces to: a
Cartesian product of axes (sources × algorithms × parameters × δ …),
each point a fully declarative :class:`~repro.api.scenario.Scenario`
carrying its own seed sweep.  :func:`build_grid` (exposed as
:meth:`Scenario.grid`) expands axis values into that product:

* the top-level fields ``source``, ``algorithm``, ``delta``,
  ``cost_model`` and ``metric`` become axes when given a sequence of
  values;
* inside ``params`` / ``algorithm_params``, any sequence value becomes an
  axis (wrap a literal list parameter in :func:`fixed` to opt out);
* ``seeds`` is never an axis — it is the per-scenario lane sweep the
  batched engine runs in lock-step.

The result is a :class:`ScenarioGrid`: the scenarios in product order
(first axis outermost), each paired with its axis coordinates, plus
constructors for orchestrator work units.  :meth:`ScenarioGrid.units`
factors shared work out automatically: scenarios that certify against a
bracketed optimum and agree on (source, params, seeds, cost model) share
one ephemeral offline-bracket cell, attached as a *soft* dependency so
every scenario cell keeps the content address of its standalone
:meth:`~repro.api.scenario.Scenario.digest` — grid sweeps, inline
:func:`repro.api.run_many` calls and CLI runs all share cache entries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .scenario import Params, Scenario, freeze_params, thaw_params

__all__ = ["ScenarioGrid", "build_grid", "expand_axes", "fixed", "point_label"]


@dataclass(frozen=True)
class _Fixed:
    """Marker wrapping a literal sequence so it is *not* an axis."""

    value: Any


def fixed(value: Any) -> _Fixed:
    """Escape hatch: pass a literal list parameter through grid expansion.

    ``Scenario.grid(..., params={"waypoints": fixed([0.0, 1.0])})`` keeps
    the list as one parameter value instead of turning it into an axis.
    """
    return _Fixed(value)


def _is_axis(value: Any) -> bool:
    return isinstance(value, (list, tuple, range)) and not isinstance(value, _Fixed)


def expand_axes(entries: Mapping[str, Any]) -> tuple[list[str], list[dict[str, Any]]]:
    """Split a mapping into axes and expand their Cartesian product.

    Sequence values (list/tuple/range, unless wrapped in :func:`fixed`)
    are axes; scalars are constants repeated across every point.  Returns
    the axis names (declaration order, first axis outermost) and one dict
    per grid point containing *all* entries (axes at their point value,
    constants unwrapped).
    """
    axes: list[tuple[str, list[Any]]] = []
    base: dict[str, Any] = {}
    for key, value in entries.items():
        if _is_axis(value):
            values = list(value)
            if not values:
                raise ValueError(f"axis {key!r} has no values")
            axes.append((key, values))
        else:
            base[key] = value.value if isinstance(value, _Fixed) else value
    names = [name for name, _ in axes]
    points = [
        {**base, **dict(zip(names, combo))}
        for combo in itertools.product(*(values for _, values in axes))
    ]
    return names, points


def _source_kind(source: str, kind: str | None) -> str:
    if kind is not None:
        return kind
    from ..adversaries.registry import ADVERSARIES
    from ..workloads.registry import WORKLOADS

    if source in WORKLOADS:
        return "workload"
    if source in ADVERSARIES:
        return "adversary"
    known = ", ".join(sorted(WORKLOADS) + sorted(ADVERSARIES))
    raise KeyError(f"unknown source {source!r}; available: {known}")


def point_label(point: Mapping[str, Any]) -> str:
    """Canonical ``k=v/...`` label of axis coordinates — doubles as the
    work-unit key of grid cells, so grid and function cells share one
    format."""
    return "/".join(f"{key}={value}" for key, value in point.items())


def build_grid(
    source: str | Sequence[str],
    algorithm: str | Sequence[str],
    params: Mapping[str, Any] | None = None,
    algorithm_params: Mapping[str, Any] | None = None,
    seeds: Iterable[int] = (0,),
    delta: float | Sequence[float] = 0.0,
    cost_model: str | None | Sequence[str | None] = None,
    metric: str | Sequence[str] = "euclidean",
    ratio: str = "auto",
    engine: str = "auto",
    kind: str | None = None,
    name: str = "",
) -> "ScenarioGrid":
    """Expand axis values into a :class:`ScenarioGrid` (see module docs).

    Axis order is ``source``, ``algorithm``, ``params`` entries
    (declaration order), ``algorithm_params`` entries, ``delta``,
    ``cost_model``, ``metric`` — outermost first.  ``kind=None`` resolves
    each source against the workload registry first, then the adversaries.
    """
    top: dict[str, Any] = {"source": source, "algorithm": algorithm}
    source_keys = list(params or {})
    alg_keys = list(algorithm_params or {})
    for key, value in (params or {}).items():
        if key in top:
            raise ValueError(f"source parameter {key!r} collides with a grid field")
        top[key] = value
    for key, value in (algorithm_params or {}).items():
        if key in top:
            raise ValueError(f"algorithm parameter {key!r} collides with another axis")
        top[key] = value
    for key, value in (("delta", delta), ("cost_model", cost_model),
                       ("metric", metric)):
        if key in top:
            raise ValueError(f"parameter {key!r} collides with the scenario field")
        top[key] = value

    axes, point_dicts = expand_axes(top)
    scenarios: list[Scenario] = []
    points: list[Params] = []
    for full in point_dicts:
        point = {axis: full[axis] for axis in axes}
        label = point_label(point)
        scenarios.append(Scenario(
            kind=_source_kind(full["source"], kind),
            source=full["source"],
            source_params=freeze_params({k: full[k] for k in source_keys}),
            algorithm=full["algorithm"],
            algorithm_params=freeze_params({k: full[k] for k in alg_keys}),
            seeds=tuple(seeds),
            delta=full["delta"],
            cost_model=full["cost_model"],
            metric=full["metric"],
            ratio=ratio,
            engine=engine,
            name=f"{name}/{label}" if name and label else (name or label or "grid"),
        ))
        points.append(freeze_params(point, sort=False))
    return ScenarioGrid(axes=tuple(axes), scenarios=tuple(scenarios),
                        points=tuple(points))


@dataclass(frozen=True)
class ScenarioGrid:
    """An expanded sweep: scenarios aligned with their axis coordinates."""

    axes: tuple[str, ...]
    scenarios: tuple[Scenario, ...]
    points: tuple[Params, ...]

    def __post_init__(self) -> None:
        if len(self.scenarios) != len(self.points):
            raise ValueError("one axis-coordinate point per scenario required")

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def point_dicts(self) -> list[dict[str, Any]]:
        """Axis coordinates of each scenario, in grid order."""
        return [thaw_params(point) for point in self.points]

    def keys(self) -> list[str]:
        """Stable per-scenario work-unit keys derived from the coordinates."""
        if not self.axes:
            return [f"s{i}" for i in range(len(self.scenarios))]
        return [point_label(thaw_params(point)) for point in self.points]

    def units(self, share_brackets: bool = True) -> list:
        """Orchestrator work units, shared bracket cells factored out."""
        from .runtime import scenario_units

        return scenario_units(list(self.scenarios), keys=self.keys(),
                              share_brackets=share_brackets)

    def run(self, *, store=None, jobs: int = 1, keep_traces: bool = False) -> list:
        """Execute the whole grid through :func:`repro.api.run_many`."""
        from .runtime import run_many

        return run_many(list(self.scenarios), store=store, jobs=jobs,
                        keep_traces=keep_traces)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "axes": list(self.axes),
            "scenarios": [sc.to_dict() for sc in self.scenarios],
            "points": self.point_dicts(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioGrid":
        return cls(
            axes=tuple(payload["axes"]),
            scenarios=tuple(Scenario.from_dict(p) for p in payload["scenarios"]),
            points=tuple(freeze_params(p, sort=False) for p in payload["points"]),
        )
