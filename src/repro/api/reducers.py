"""Reducer registry: named functions that fold grid cells into a table.

An :class:`~repro.api.spec.ExperimentSpec` pairs a grid of cells with a
*reducer* — a registered function that receives the computed cell
payloads plus each cell's axis coordinates and returns the experiment's
rows, notes and pass/fail verdict (a :class:`Reduction`).  Reducers are
addressed by name, mirroring the workload/adversary/algorithm
registries, so an experiment module stays fully declarative: grid +
reducer name + formatting.

The generic reducers ship here, drawing on :mod:`repro.analysis`:

``table``
    One row per grid point — axis coordinates followed by named payload
    fields; optional per-cell pass flag.
``scenario-table``
    For :class:`~repro.api.grid.ScenarioGrid` cells: axis coordinates +
    mean cost + the certified ratio columns of each
    :class:`~repro.api.runtime.RunResult` payload, with an optional
    ratio ceiling as the pass criterion.
``ratio-curve``
    Group points by one axis, average a payload field per group (the
    ratio-vs-parameter curve every competitive-analysis plot reduces to).
``bootstrap-ci``
    Like ``ratio-curve`` but each group's mean comes with a seeded
    bootstrap confidence interval
    (:func:`repro.analysis.stats.bootstrap_ci`); an optional bound on
    the CI's upper end is the pass criterion.
``regression-fit``
    Power-law fit (:func:`repro.analysis.regression.fit_power_law`) of a
    payload field against one axis, with an optional exponent window as
    the pass criterion.
``potential-trace``
    Per-point summary of potential-argument payloads
    (:mod:`repro.analysis.potential` shape: ``max_k``/``q95``/
    ``violations``/``amort``); passes iff no step violated the argument.

Experiment-specific reducers register themselves from their experiment
module (e.g. ``e9/lemma6``) — the registry treats both kinds alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "REDUCERS",
    "Reduction",
    "ReducerInfo",
    "available_reducers",
    "reduce_cells",
    "reducer_info",
    "register_reducer",
]

#: ``(key, point)`` pairs in grid declaration order — the reducer's view
#: of which cell sits at which axis coordinates.
Points = Sequence[Tuple[str, Mapping[str, Any]]]


@dataclass
class Reduction:
    """What a reducer distils a grid into: table rows, notes, verdict."""

    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)
    passed: bool = True


#: Reducer signature: ``fn(cells, points=..., config=..., scale=..., seed=...)``.
ReducerFn = Callable[..., Reduction]


@dataclass(frozen=True)
class ReducerInfo:
    """Registry entry: the reducer plus its one-line description."""

    name: str
    fn: ReducerFn
    summary: str = ""


REDUCERS: Dict[str, ReducerInfo] = {}


def register_reducer(name: str, summary: str = "") -> Callable[[ReducerFn], ReducerFn]:
    """Decorator registering a reducer under a stable name."""

    def deco(fn: ReducerFn) -> ReducerFn:
        if name in REDUCERS:
            raise ValueError(f"reducer {name!r} is already registered")
        REDUCERS[name] = ReducerInfo(name=name, fn=fn, summary=summary)
        return fn

    return deco


def reducer_info(name: str) -> ReducerInfo:
    try:
        return REDUCERS[name]
    except KeyError:
        raise KeyError(
            f"unknown reducer {name!r}; available: {', '.join(sorted(REDUCERS))}"
        ) from None


def available_reducers() -> list[str]:
    return sorted(REDUCERS)


def reduce_cells(
    name: str,
    cells: Mapping[str, Any],
    *,
    points: Points,
    config: Mapping[str, Any] | None = None,
    scale: float = 1.0,
    seed: int = 0,
) -> Reduction:
    """Apply the named reducer to computed cell payloads."""
    reduction = reducer_info(name).fn(cells, points=points, config=dict(config or {}),
                                      scale=scale, seed=seed)
    if not isinstance(reduction, Reduction):
        raise TypeError(f"reducer {name!r} must return a Reduction, "
                        f"got {type(reduction).__name__}")
    return reduction


# -- generic reducers -------------------------------------------------------


@register_reducer("table", "one row per grid point: axis coords + named payload fields")
def _reduce_table(cells: Mapping[str, Any], *, points: Points,
                  config: Mapping[str, Any], scale: float, seed: int) -> Reduction:
    """Config: ``columns`` (payload field names appended after the axis
    coordinates), optional ``ok`` (boolean payload field — the run passes
    iff it holds in every cell), optional ``notes`` (static strings)."""
    columns = list(config.get("columns", []))
    ok_field = config.get("ok")
    rows: list[list[Any]] = []
    passed = True
    for key, point in points:
        payload = cells[key]
        rows.append([*point.values(), *(payload[col] for col in columns)])
        if ok_field is not None and not payload[ok_field]:
            passed = False
    return Reduction(rows=rows, notes=list(config.get("notes", [])), passed=passed)


@register_reducer("scenario-table",
                  "axis coords + mean cost + certified ratio columns per scenario cell")
def _reduce_scenario_table(cells: Mapping[str, Any], *, points: Points,
                           config: Mapping[str, Any], scale: float, seed: int) -> Reduction:
    """Config: optional ``max_ratio`` — the run passes iff every cell's
    certified mean ratio (upper bracket end, or adversary lower bound)
    stays at or below it."""
    from .runtime import RunResult

    ceiling = config.get("max_ratio")
    rows: list[list[Any]] = []
    passed = True
    for key, point in points:
        res = RunResult.from_payload(cells[key])
        rows.append([*point.values(), *res.table_columns()])
        certified = res.certified_ratio()
        if ceiling is not None and certified is not None and certified > ceiling:
            passed = False
    notes = list(config.get("notes", []))
    if ceiling is not None:
        notes.append(f"criterion: certified mean ratio <= {ceiling:g} at every grid point")
    return Reduction(rows=rows, notes=notes, passed=passed)


def _grouped(points: Points, axis: str) -> list[tuple[Any, list[str]]]:
    """Cell keys grouped by one axis value, first-appearance order."""
    groups: dict[Any, list[str]] = {}
    for key, point in points:
        groups.setdefault(point[axis], []).append(key)
    return list(groups.items())


@register_reducer("ratio-curve", "mean of a payload field per value of one axis")
def _reduce_ratio_curve(cells: Mapping[str, Any], *, points: Points,
                        config: Mapping[str, Any], scale: float, seed: int) -> Reduction:
    """Config: ``x`` (grouping axis), ``value`` (payload field, default
    ``"ratio"``), optional ``bound`` (the curve must stay below it)."""
    axis = config["x"]
    value = config.get("value", "ratio")
    bound = config.get("bound")
    rows: list[list[Any]] = []
    passed = True
    for x, keys in _grouped(points, axis):
        mean = float(np.mean([cells[k][value] for k in keys]))
        rows.append([x, mean])
        if bound is not None and mean > bound:
            passed = False
    notes = list(config.get("notes", []))
    if bound is not None:
        notes.append(f"criterion: mean {value} <= {bound:g} at every {axis}")
    return Reduction(rows=rows, notes=notes, passed=passed)


@register_reducer("bootstrap-ci",
                  "mean + bootstrap confidence interval of a payload field per axis value")
def _reduce_bootstrap_ci(cells: Mapping[str, Any], *, points: Points,
                         config: Mapping[str, Any], scale: float, seed: int) -> Reduction:
    """Config: ``x`` (grouping axis), ``value`` (payload field, default
    ``"ratio"``), ``confidence`` (default 0.95), ``n_boot`` (default
    2000), optional ``bound`` (the CI's *upper* end must stay at or
    below it at every axis value).  Resampling is seeded from the
    experiment seed, so the interval is deterministic per run.
    """
    from ..analysis.stats import bootstrap_ci

    axis = config["x"]
    value = config.get("value", "ratio")
    confidence = float(config.get("confidence", 0.95))
    n_boot = int(config.get("n_boot", 2000))
    bound = config.get("bound")
    rows: list[list[Any]] = []
    passed = True
    for x, keys in _grouped(points, axis):
        data = np.asarray([float(cells[k][value]) for k in keys], dtype=np.float64)
        lo, hi = bootstrap_ci(data, confidence=confidence, n_boot=n_boot,
                              rng=np.random.default_rng(seed))
        rows.append([x, float(data.mean()), lo, hi])
        if bound is not None and hi > bound:
            passed = False
    notes = [f"{confidence:.0%} bootstrap CI, {n_boot} resamples, seeded"]
    notes.extend(config.get("notes", []))
    if bound is not None:
        notes.append(f"criterion: CI upper end of {value} <= {bound:g} at every {axis}")
    return Reduction(rows=rows, notes=notes, passed=passed)


@register_reducer("regression-fit", "power-law fit of a payload field against one axis")
def _reduce_regression_fit(cells: Mapping[str, Any], *, points: Points,
                           config: Mapping[str, Any], scale: float, seed: int) -> Reduction:
    """Config: ``x`` (axis), ``value`` (payload field, default
    ``"ratio"``), optional ``exponent_range`` ``[lo, hi]`` pass window."""
    from ..analysis.regression import fit_power_law

    axis = config["x"]
    value = config.get("value", "ratio")
    rows: list[list[Any]] = []
    xs: list[float] = []
    ys: list[float] = []
    for x, keys in _grouped(points, axis):
        mean = float(np.mean([cells[k][value] for k in keys]))
        rows.append([x, mean])
        xs.append(float(x))
        ys.append(mean)
    fit = fit_power_law(np.array(xs), np.array(ys))
    notes = [f"fit: {value} ~ {axis}^{fit.exponent:.3f} (R^2 = {fit.r_squared:.3f})"]
    passed = True
    window = config.get("exponent_range")
    if window is not None:
        lo, hi = window
        passed = lo <= fit.exponent <= hi
        notes.append(f"criterion: exponent in [{lo:g}, {hi:g}]")
    return Reduction(rows=rows, notes=notes, passed=passed)


@register_reducer("potential-trace", "per-point potential-argument summary; passes iff no violations")
def _reduce_potential_trace(cells: Mapping[str, Any], *, points: Points,
                            config: Mapping[str, Any], scale: float, seed: int) -> Reduction:
    """Payload shape per cell: ``max_k``, ``q95``, ``violations``,
    ``amort`` (see :func:`repro.analysis.potential.verify_potential_argument`)."""
    rows: list[list[Any]] = []
    passed = True
    for key, point in points:
        payload = cells[key]
        rows.append([*point.values(), payload["max_k"], payload["q95"],
                     payload["violations"], payload["amort"]])
        if payload["violations"]:
            passed = False
    return Reduction(rows=rows, notes=list(config.get("notes", [])), passed=passed)
