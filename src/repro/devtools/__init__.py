"""Developer tooling that guards the reproduction's code invariants.

Nothing in here runs during simulations; the package exists so the
correctness contracts the tests assert *after the fact* (determinism,
crash-safety, kernel parity) are also enforced *by construction* over the
source tree — see :mod:`repro.devtools.lint`.
"""
