"""MET001 — no raw ``np.linalg.norm`` on positions outside the metric layer.

The metric refactor routes every position-space distance through the
:class:`~repro.core.metric.Metric` interface (``self.metric.distance`` in
algorithms, an explicit ``Metric`` argument elsewhere).  A raw
``np.linalg.norm`` in decision or accounting code silently hardwires ℓ2
— correct under the default metric, wrong the moment the same code runs
under ``l1``/``linf``/``graph`` — and, worse, ``np.linalg.norm`` is not
bit-identical to the engine's einsum norm for ``d >= 2``, so a stray
call can break batched/fused parity too.

Scoped to the trees whose code executes under a caller-chosen metric:
``algorithms/``, ``adversaries/``, ``extensions/``, ``serve/`` and
``core/`` (minus ``core/metric.py`` itself, where the ℓ2 implementation
legitimately lives).  Analysis, offline and workload code is out of
scope — those layers are explicitly Euclidean (DP grids, Lemma 6
geometry, ℝᵈ samplers).  Deliberately-Euclidean legacy sites carry
``# reprolint: allow[MET001] reason=...``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule, dotted_name
from ..registry import rule

__all__ = ["check_met001"]

#: The one module allowed to spell out ℓ2 arithmetic: the metric layer.
_METRIC_MODULE = "src/repro/core/metric.py"


@rule(
    "MET001",
    "no raw np.linalg.norm in metric-generic code — distances go through core.metric",
    scopes=(
        "src/repro/algorithms/",
        "src/repro/adversaries/",
        "src/repro/extensions/",
        "src/repro/serve/",
        "src/repro/core/",
    ),
)
def check_met001(module: ParsedModule, index: ModuleIndex) -> Iterator[Finding]:
    if module.relpath == _METRIC_MODULE:
        return
    # Bare ``norm(...)`` bound by ``from numpy.linalg import norm``.
    bare = module.imported_names(("numpy.linalg",))
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if parts[-2:] == ["linalg", "norm"] or name in bare:
            yield Finding(
                path=module.relpath, line=node.lineno, col=node.col_offset,
                rule="MET001",
                message="raw np.linalg.norm hardwires l2 in metric-generic code — "
                        "use the Metric interface (repro.core.metric) for distances",
            )
