"""RNG001 — no entropy-seeded randomness in library code.

Everything the reproduction promises — bit-identical batched/fused/
spooled reruns, content-addressed cache hits — dies silently the moment
a code path draws from OS entropy.  Under ``src/`` this rule flags

* ``np.random.default_rng()`` called without a seed or source generator
  (the classic "reproducible unless you forgot to pass rng" fallback);
* any use of the legacy ``np.random.*`` global-state API (``seed``,
  ``rand``, ``shuffle``, ...), whose hidden module-level state leaks
  across lanes, processes and library boundaries.

Pass an explicit seed (``default_rng(0)``) or thread a caller-owned
``Generator``.  Genuinely-entropic code (none exists today) must carry
``# reprolint: allow[RNG001] reason=...``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule, dotted_name
from ..registry import rule

__all__ = ["check_rng001"]

#: Legacy global-state entry points of ``numpy.random``; the Generator
#: API (``default_rng``, ``Generator``, ``SeedSequence``, bit generators)
#: is exempt — only *seedless* ``default_rng()`` calls are flagged above.
LEGACY_GLOBALS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel",
    "laplace", "logistic", "lognormal", "multinomial",
    "multivariate_normal", "normal", "permutation", "poisson", "rand",
    "randint", "randn", "random", "random_integers", "random_sample",
    "ranf", "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "uniform", "vonmises", "weibull", "zipf",
})


@rule(
    "RNG001",
    "no seedless default_rng() or legacy np.random.* global state in src/",
    scopes=("src/",),
)
def check_rng001(module: ParsedModule, index: ModuleIndex) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (
                name is not None
                and name.split(".")[-1] == "default_rng"
                and not node.args
                and not node.keywords
            ):
                yield Finding(
                    path=module.relpath, line=node.lineno, col=node.col_offset,
                    rule="RNG001",
                    message="seedless np.random.default_rng() draws OS entropy — "
                            "pass an explicit seed or thread the caller's Generator",
                )
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) >= 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] in LEGACY_GLOBALS
            ):
                yield Finding(
                    path=module.relpath, line=node.lineno, col=node.col_offset,
                    rule="RNG001",
                    message=f"legacy np.random.{parts[2]} uses hidden global RNG "
                            "state — use a seeded np.random.Generator instead",
                )
