"""DET001 — digest inputs must be order-stable.

Content addresses (``digest_key``, the golden-table digests) only stay
stable if every byte fed into ``hashlib`` has a deterministic order:
``json.dumps`` without ``sort_keys=True`` serializes dicts in insertion
order (a refactor away from changing), and ``set`` iteration order
varies with hash seeding across processes.

Within any function (or module body) that computes a digest — calls a
``hashlib`` constructor, ``.update`` on a hash object, or ``digest_key``
— this rule flags

* ``json.dumps(...)`` lacking a literal ``sort_keys=True``;
* a ``set`` literal, set comprehension or ``set(...)`` call appearing
  inside the argument of a hash call (its iteration order is fed
  straight into the digest).

Cross-function dataflow is out of scope (a helper that returns unsorted
JSON to a hashing caller is not traced); keep digest construction local,
as ``repro.core.store._canonical_json`` does.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule, dotted_name
from ..registry import rule

__all__ = ["check_det001"]

_HASH_CONSTRUCTORS = frozenset({
    "md5", "sha1", "sha224", "sha256", "sha384", "sha512",
    "sha3_224", "sha3_256", "sha3_384", "sha3_512",
    "blake2b", "blake2s", "new",
})


def _is_hash_call(node: ast.Call, hashlib_names: set) -> bool:
    name = dotted_name(node.func)
    if name is None:
        return False
    parts = name.split(".")
    if parts[-1] == "digest_key":
        return True
    if parts[0] == "hashlib" and len(parts) > 1 and parts[-1] in _HASH_CONSTRUCTORS:
        return True
    if len(parts) == 1 and parts[0] in hashlib_names:
        return True
    return False


def _is_dumps_call(node: ast.Call, json_names: set) -> bool:
    name = dotted_name(node.func)
    if name is None:
        return False
    if name == "json.dumps" or name.endswith(".json.dumps"):
        return True
    return "." not in name and name in json_names


_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _scope_nodes(scope: ast.AST) -> List[ast.AST]:
    """All nodes of one scope, *excluding* nested function bodies.

    Each function couples its own dumps/hash calls; a module-level hash
    call must not implicate a ``json.dumps`` inside some unrelated
    function (and vice versa).
    """
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTIONS):
                continue
            stack.append(child)
    return nodes


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module body plus every function, each a separate scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTIONS):
            yield node


@rule("DET001", "digest inputs must be order-stable (sort_keys JSON, no set order)")
def check_det001(module: ParsedModule, index: ModuleIndex) -> Iterator[Finding]:
    hashlib_names = module.imported_names(("hashlib",)) & _HASH_CONSTRUCTORS
    json_names = module.imported_names(("json",)) & {"dumps"}
    seen: set = set()
    for scope in _scopes(module.tree):
        nodes = _scope_nodes(scope)
        hash_calls: List[ast.Call] = [
            node for node in nodes
            if isinstance(node, ast.Call)
            and (_is_hash_call(node, hashlib_names)
                 or (isinstance(node.func, ast.Attribute)
                     and node.func.attr == "update"
                     and isinstance(node.func.value, ast.Name)
                     and ("hash" in node.func.value.id
                          or node.func.value.id in ("h", "hasher", "digest"))))
        ]
        if not hash_calls:
            continue
        for node in nodes:
            if not isinstance(node, ast.Call) or not _is_dumps_call(node, json_names):
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            sorted_kw = next(
                (kw for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            is_sorted = (
                sorted_kw is not None
                and not (isinstance(sorted_kw.value, ast.Constant)
                         and sorted_kw.value.value is not True)
            )
            if not is_sorted:
                seen.add(key)
                yield Finding(
                    path=module.relpath, line=node.lineno, col=node.col_offset,
                    rule="DET001",
                    message="json.dumps in a digest-computing scope without "
                            "sort_keys=True — dict order would leak into the "
                            "content address",
                )
        for call in hash_calls:
            for sub in ast.walk(call):
                if isinstance(sub, (ast.Set, ast.SetComp)) or (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in ("set", "frozenset")
                ):
                    key = (sub.lineno, sub.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Finding(
                        path=module.relpath, line=sub.lineno, col=sub.col_offset,
                        rule="DET001",
                        message="set iteration order feeds a hash call — sort it "
                                "(sorted(...)) before digesting",
                    )
