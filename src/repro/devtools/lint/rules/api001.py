"""API001 — public-surface drift and silent deprecation shims.

``repro.api`` is the frozen public surface; drift between what a module
*exports* and what it *defines* is how stale docs and broken
``from repro.api import X`` land in user code.  Three checks:

* **__all__ soundness** (every module): each ``__all__`` entry must
  resolve to a module-level binding (import, def, class or assignment —
  conditional ``if``/``try`` branches included).
* **api surface completeness** (``src/repro/api/__init__.py`` only):
  every name the module from-imports must appear in ``__all__`` — the
  re-export list *is* the surface, nothing rides along unlisted.
* **deprecation shims actually warn as deprecations**: a
  ``warnings.warn`` whose message says "deprecated" must pass
  ``DeprecationWarning`` (or a subclass) as its category, not default
  to ``UserWarning`` — silent-ish shims never reach ``-W error``
  upgrade runs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule, dotted_name
from ..registry import rule

__all__ = ["check_api001"]

API_INIT_PATH = "src/repro/api/__init__.py"

_DEPRECATION_CATEGORIES = {
    "DeprecationWarning", "PendingDeprecationWarning", "FutureWarning",
}

_BLOCKS = (ast.If, ast.Try, ast.For, ast.While, ast.With)


def _module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module level (descending into if/try/loop blocks)."""
    bound: Set[str] = set()

    def visit(body) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(node, _BLOCKS):
                for field in ("body", "orelse", "finalbody"):
                    visit(getattr(node, field, []) or [])
                for handler in getattr(node, "handlers", []):
                    visit(handler.body)

    visit(tree.body)
    return bound


def _all_entries(tree: ast.Module):
    """``(entry, line)`` pairs from every module-level ``__all__`` list."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    yield elt.value, elt.lineno


def _warn_category(node: ast.Call):
    """The category expression of a ``warnings.warn`` call, if any."""
    if len(node.args) >= 2:
        return node.args[1]
    for kw in node.keywords:
        if kw.arg == "category":
            return kw.value
    return None


@rule(
    "API001",
    "__all__ matches real bindings; deprecation shims warn DeprecationWarning",
    project=True,
)
def check_api001(index: ModuleIndex) -> Iterator[Finding]:
    for module in sorted(index, key=lambda m: m.relpath):
        bound = None
        for entry, line in _all_entries(module.tree):
            if bound is None:
                bound = _module_bindings(module.tree)
            if entry not in bound:
                yield Finding(
                    path=module.relpath, line=line, col=0, rule="API001",
                    message=f"__all__ exports {entry!r} but the module never "
                            "binds that name — stale public surface",
                )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "warn":
                continue
            if not (name == "warn" or name.endswith("warnings.warn")):
                continue
            message = node.args[0] if node.args else None
            if not (
                isinstance(message, ast.Constant)
                and isinstance(message.value, str)
                and "deprecat" in message.value.lower()
            ):
                continue
            category = _warn_category(node)
            if not (
                isinstance(category, ast.Name)
                and category.id in _DEPRECATION_CATEGORIES
            ):
                yield Finding(
                    path=module.relpath, line=node.lineno, col=node.col_offset,
                    rule="API001",
                    message="deprecation message without DeprecationWarning "
                            "category — the shim warns as UserWarning and "
                            "evades -W error::DeprecationWarning runs",
                )

    api = index.module(API_INIT_PATH)
    if api is not None:
        exported = {entry for entry, _ in _all_entries(api.tree)}
        if exported:
            for node in api.tree.body:
                if not isinstance(node, ast.ImportFrom):
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "*" or local.startswith("_"):
                        continue
                    if local not in exported:
                        yield Finding(
                            path=api.relpath, line=node.lineno, col=0,
                            rule="API001",
                            message=f"repro.api imports {local!r} but __all__ "
                                    "does not list it — unlisted surface drift",
                        )
