"""Built-in invariant rules.

Importing this package populates :data:`repro.devtools.lint.registry.RULES`
— one module per rule, each self-registering via the ``@rule`` decorator.
"""

from . import api001, clk001, det001, io001, met001, reg001, rng001, spec001  # noqa: F401

__all__ = ["api001", "clk001", "det001", "io001", "met001", "reg001", "rng001", "spec001"]
