"""SPEC001 — experiment ids are unique and the registries agree.

Every experiment is addressed by its id in two dict literals
(``SPECS`` and ``EXPERIMENTS`` in ``experiments/__init__.py``) and by
the ``experiment_id=`` its module passes to
:class:`~repro.api.spec.ExperimentSpec`.  A duplicate literal key in a
dict is legal Python that silently drops the earlier entry, and two
modules claiming the same ``experiment_id`` would collide in reports
and content-addressed work-unit keys — neither failure mode surfaces in
tests until the shadowed experiment is missed.

This project-wide rule checks, purely from the ASTs:

* ``SPECS`` and ``EXPERIMENTS`` contain no duplicate literal keys;
* no two experiment modules construct an ``ExperimentSpec`` with the
  same literal ``experiment_id``;
* the two registries cover the same id set (a spec without a runner, or
  a runner without a spec, is flagged on the dict that has the extra).

Like REG001, the rule reads its registry module by fixed repo-relative
path and silently skips when it is absent (linting fixtures or a
different tree).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule
from ..registry import rule
from .reg001 import _dict_assignment

__all__ = ["check_spec001"]

REGISTRY_PATH = "src/repro/experiments/__init__.py"
EXPERIMENTS_DIR = "src/repro/experiments/"


def _literal_key_occurrences(dict_node: ast.Dict) -> List[Tuple[str, int]]:
    """Every constant-string key with its line, duplicates included."""
    return [
        (key.value, key.lineno)
        for key in dict_node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    ]


def _spec_ids(module: ParsedModule) -> List[Tuple[str, int]]:
    """Literal ``experiment_id=`` keywords of ``ExperimentSpec(...)`` calls."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "ExperimentSpec":
            continue
        for keyword in node.keywords:
            if (
                keyword.arg == "experiment_id"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                out.append((keyword.value.value, keyword.value.lineno))
    return out


@rule(
    "SPEC001",
    "experiment ids are unique across SPECS/EXPERIMENTS and ExperimentSpec declarations",
    project=True,
)
def check_spec001(index: ModuleIndex) -> Iterator[Finding]:
    registry = index.module(REGISTRY_PATH)
    if registry is None:
        return

    dicts = {}
    for dict_name in ("SPECS", "EXPERIMENTS"):
        dict_node = _dict_assignment(registry, dict_name)
        if dict_node is None:
            continue
        occurrences = _literal_key_occurrences(dict_node)
        seen: Dict[str, int] = {}
        for key, line in occurrences:
            if key in seen:
                yield Finding(
                    path=registry.relpath, line=line, col=0, rule="SPEC001",
                    message=f"duplicate {dict_name} key {key!r} (first at line "
                            f"{seen[key]}) — the earlier entry is silently "
                            "shadowed",
                )
            else:
                seen[key] = line
        dicts[dict_name] = seen

    if "SPECS" in dicts and "EXPERIMENTS" in dicts:
        for key in sorted(set(dicts["SPECS"]) - set(dicts["EXPERIMENTS"])):
            yield Finding(
                path=registry.relpath, line=dicts["SPECS"][key], col=0,
                rule="SPEC001",
                message=f"SPECS declares {key!r} but EXPERIMENTS has no "
                        "runner for it",
            )
        for key in sorted(set(dicts["EXPERIMENTS"]) - set(dicts["SPECS"])):
            yield Finding(
                path=registry.relpath, line=dicts["EXPERIMENTS"][key], col=0,
                rule="SPEC001",
                message=f"EXPERIMENTS declares {key!r} but SPECS has no "
                        "spec builder for it",
            )

    # experiment_id literals across the experiment modules: the first
    # module to claim an id owns it; later claimants are findings.
    claimed: Dict[str, Tuple[str, int]] = {}
    for module in sorted(index, key=lambda m: m.relpath):
        if not module.relpath.startswith(EXPERIMENTS_DIR):
            continue
        if module.relpath == REGISTRY_PATH:
            continue
        ids = _spec_ids(module)
        local_seen: Dict[str, int] = {}
        for experiment_id, line in ids:
            owner = claimed.get(experiment_id)
            if owner is not None and owner[0] != module.relpath:
                yield Finding(
                    path=module.relpath, line=line, col=0, rule="SPEC001",
                    message=f"experiment_id {experiment_id!r} is already "
                            f"declared by {owner[0]} (line {owner[1]}) — "
                            "ids must be unique across experiment modules",
                )
                continue
            # Repeats inside one module are one experiment restated
            # (e.g. a helper building the spec twice); not a collision.
            local_seen.setdefault(experiment_id, line)
        for experiment_id, line in local_seen.items():
            claimed.setdefault(experiment_id, (module.relpath, line))
