"""CLK001 — no wall-clock values in digest/store/spool content.

The content-addressed store and the spool task protocol promise that the
same inputs produce the same bytes; a timestamp smuggled into a payload,
a task file or a digested parameter dict breaks cache hits and the
byte-for-byte distributed-vs-inline CI diffs.  Within the modules that
*construct* that content (``core/store.py``, ``core/io.py``, the
scenario/runtime cells, the executor layer and the serve subsystem's
checkpoint/digest paths under ``serve/``), every clock read —
``time.time``/``monotonic``/``perf_counter``, ``datetime.now`` and
friends — is flagged unless it is provably timing-only:

* used inside a comparison or an ``if``/``while`` test (deadlines,
  idle/stale checks);
* combined arithmetically with an existing timing value
  (``perf_counter() - t0``);
* bound to a timing-named target (``t0``, ``elapsed*``, ``*seconds*``,
  ``last_*``, ``idle_*``, ``*deadline*``, ``*_age``, ``share``,
  ``since``) — the allowlisted "timing-only fields".

Anything else — a clock call inside a dict literal, a payload keyword,
a return value without timing arithmetic — is a finding.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule, dotted_name
from ..registry import rule

__all__ = ["check_clk001"]

#: Dotted suffixes that read a clock.  Suffix-matched so both
#: ``time.time()`` and ``datetime.datetime.now()`` resolve.
WALL_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)

#: Bare names that count as clock reads when imported from time/datetime.
_BARE_CLOCKS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: Assignment targets (and arithmetic partners) that mark a value as
#: timing-only: it measures a duration or schedules a deadline, and by
#: convention never lands in persisted content.
TIMING_NAME = re.compile(
    r"^(t\d*|elapsed\w*|\w*seconds\w*|last_\w+|idle_\w+|\w*deadline\w*"
    r"|\w+_age|share|since|started\w*|\w*_t0)$"
)


def _is_clock_call(node: ast.Call, bare_clocks: set) -> bool:
    name = dotted_name(node.func)
    if name is None:
        return False
    if name in bare_clocks and "." not in name:
        return True
    return any(
        name == suffix or name.endswith("." + suffix)
        for suffix in WALL_CLOCK_SUFFIXES
    )


def _names_timing(node: ast.AST) -> bool:
    """Whether the subtree mentions a timing-named variable/attribute."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and TIMING_NAME.match(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and TIMING_NAME.match(sub.attr):
            return True
    return False


def _assign_targets_timing(node: ast.AST) -> bool:
    targets = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    names = []
    for target in targets:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.append(sub.attr)
    return bool(names) and all(TIMING_NAME.match(name) for name in names)


def _timing_only(module: ParsedModule, call: ast.Call) -> bool:
    """Climb from the clock call looking for an allowed timing context."""
    child: ast.AST = call
    parent: Optional[ast.AST] = module.parent(call)
    while parent is not None:
        if isinstance(parent, ast.Compare):
            return True
        if isinstance(parent, (ast.If, ast.While)) and child is parent.test:
            return True
        if isinstance(parent, ast.BinOp):
            other = parent.right if child is parent.left else parent.left
            if _names_timing(other) or any(
                isinstance(sub, ast.Call) and _is_clock_call(sub, set())
                for sub in ast.walk(other)
            ):
                return True
        if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return _assign_targets_timing(parent)
        if isinstance(parent, ast.stmt):
            return False
        child, parent = parent, module.parent(parent)
    return False


@rule(
    "CLK001",
    "no wall-clock reads flowing into digest/store/spool-task content",
    scopes=(
        "src/repro/core/store.py",
        "src/repro/core/io.py",
        "src/repro/api/scenario.py",
        "src/repro/api/runtime.py",
        "src/repro/experiments/orchestrator.py",
        "src/repro/experiments/executors/",
        "src/repro/serve/",
    ),
)
def check_clk001(module: ParsedModule, index: ModuleIndex) -> Iterator[Finding]:
    bare_clocks = module.imported_names(("time",)) & _BARE_CLOCKS
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not _is_clock_call(node, bare_clocks):
            continue
        if _timing_only(module, node):
            continue
        yield Finding(
            path=module.relpath, line=node.lineno, col=node.col_offset,
            rule="CLK001",
            message="wall-clock read can leak into digested/stored content — "
                    "bind it to a timing-only name (t0/elapsed/last_*) or keep "
                    "it out of payload construction",
        )
