"""IO001 — crash-safe writes only in the store and executor layers.

The store and the spool protocol survive ``kill -9`` because every file
they publish is written to a dot-prefixed temporary and atomically
renamed into place (``ResultsStore.save``, ``_SpoolDir._atomic_write``).
A bare ``open(path, "w")`` or ``path.write_text(...)`` to a *final* name
reintroduces torn files that other processes can observe half-written.

Within ``core/store.py``, ``core/io.py`` and ``experiments/executors/``
this rule flags

* ``open(...)`` / ``Path.open(...)`` with a writing mode (``w``, ``a``,
  ``x`` or ``+``);
* ``.write_text(...)`` / ``.write_bytes(...)`` on any receiver not
  named like a temporary (``tmp*`` / ``_tmp*`` / ``*_tmp``).

Writes to tmp-named targets are the *first half* of the tmp+rename
idiom and pass; everything else must route through the helpers.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule, dotted_name
from ..registry import rule

__all__ = ["check_io001"]

_TMP_NAME = re.compile(r"^_?tmp\w*$|^\w*_tmp$")
_WRITE_MODE = re.compile(r"[wax+]")


def _mode_argument(node: ast.Call) -> ast.expr | None:
    if len(node.args) >= 2:
        return node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            return kw.value
    return None


def _receiver_is_tmp(func: ast.Attribute) -> bool:
    value = func.value
    if isinstance(value, ast.Name):
        return bool(_TMP_NAME.match(value.id))
    if isinstance(value, ast.Attribute):
        return bool(_TMP_NAME.match(value.attr))
    return False


@rule(
    "IO001",
    "store/executor file writes must use tmp+rename, never bare open(.., 'w')",
    scopes=(
        "src/repro/core/store.py",
        "src/repro/core/io.py",
        "src/repro/experiments/executors/",
    ),
)
def check_io001(module: ParsedModule, index: ModuleIndex) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is not None and (name == "open" or name.endswith(".open")):
            mode = _mode_argument(node)
            writes = (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and bool(_WRITE_MODE.search(mode.value))
            )
            tmp_receiver = isinstance(node.func, ast.Attribute) and _receiver_is_tmp(
                node.func
            )
            if writes and not tmp_receiver:
                yield Finding(
                    path=module.relpath, line=node.lineno, col=node.col_offset,
                    rule="IO001",
                    message="bare writing open() in a crash-safe layer — write a "
                            "tmp-named sibling and atomically rename "
                            "(ResultsStore.save / _atomic_write)",
                )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("write_text", "write_bytes")
            and not _receiver_is_tmp(node.func)
        ):
            yield Finding(
                path=module.relpath, line=node.lineno, col=node.col_offset,
                rule="IO001",
                message=f"direct .{node.func.attr}() to a final path can tear on "
                        "crash — write to a tmp-named path and rename into place",
            )
