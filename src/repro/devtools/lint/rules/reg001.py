"""REG001 — kernel/registry/parity-test completeness across files.

The fused-kernel fast path is only trustworthy because three artifacts
stay in lock-step: the vectorized implementations in
``algorithms/vectorized.py`` (whose classes advertise a kernel via a
``kernel = "name"`` class attribute), the :data:`repro.core.kernels.KERNELS`
registry that the engine dispatches on, and the bit-parity suite in
``tests/test_kernels.py`` that proves fused == per-step loop.  A new
algorithm that lands in one place but not the others either silently
loses the fast path or — worse — gains an unproven one.

This project-wide rule checks, purely from the ASTs:

* every ``VECTORIZED`` registry key is also an ``ALGORITHMS`` key (no
  orphan vectorized entries unreachable by name);
* every ``kernel = "..."`` advertised by a class reachable from
  ``VECTORIZED`` names a registered ``KERNELS`` key;
* every ``KERNELS`` key is advertised by at least one vectorized class
  (no dead kernels the engine can never select);
* the parity test module references every kernel — either by importing
  ``KERNELS`` itself (parametrizing over the registry covers all
  entries, present and future) or by naming each kernel as a string
  literal.

The rule reads its three source modules by fixed repo-relative path and
silently skips when they are absent (linting a tree that is not this
project, or fixtures).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..findings import Finding
from ..index import ModuleIndex, ParsedModule
from ..registry import rule

__all__ = ["check_reg001"]

VECTORIZED_PATH = "src/repro/algorithms/vectorized.py"
KERNELS_PATH = "src/repro/core/kernels.py"
ALGORITHMS_PATH = "src/repro/algorithms/registry.py"
PARITY_TEST_PATH = "tests/test_kernels.py"


def _dict_assignment(module: ParsedModule, name: str) -> Optional[ast.Dict]:
    for node in module.tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(getattr(node, "value", None), ast.Dict)
        ):
            return node.value
    return None


def _string_keys(dict_node: ast.Dict) -> Dict[str, int]:
    """``{key: line}`` for every constant-string dict key."""
    keys: Dict[str, int] = {}
    for key in dict_node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys[key.value] = key.lineno
    return keys


def _entry_class(value: ast.expr) -> Optional[str]:
    """The class name a registry value resolves to.

    Handles the two idioms the registries use: a bare class reference
    (``"mtc": BatchedMoveToCenter``) and a zero-argument lambda
    constructing one (``"lazy-aggressive": lambda: BatchedLazy(...)``).
    """
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Lambda):
        body = value.body
        if isinstance(body, ast.Call) and isinstance(body.func, ast.Name):
            return body.func.id
    return None


def _class_kernels(module: ParsedModule) -> Dict[str, Tuple[str, int]]:
    """``{class name: (advertised kernel, line)}`` from ``kernel = "..."``."""
    out: Dict[str, Tuple[str, int]] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "kernel"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                out[node.name] = (stmt.value.value, stmt.lineno)
    return out


def _imports_kernels_registry(module: ParsedModule) -> bool:
    """Whether the test module binds the KERNELS registry itself.

    ``KERNELS`` is re-exported through ``repro.core``, so any from-import
    binding that name counts — parametrizing over the registry covers
    every present and future kernel by construction.
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and any(
            alias.name == "KERNELS" for alias in node.names
        ):
            return True
    return False


def _string_literals(module: ParsedModule) -> set:
    return {
        node.value
        for node in ast.walk(module.tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@rule(
    "REG001",
    "every kernel-tagged algorithm has a StepKernel registration and a parity test",
    project=True,
)
def check_reg001(index: ModuleIndex) -> Iterator[Finding]:
    vec = index.module(VECTORIZED_PATH)
    ker = index.module(KERNELS_PATH)
    if vec is None or ker is None:
        return
    vectorized = _dict_assignment(vec, "VECTORIZED")
    kernels = _dict_assignment(ker, "KERNELS")
    if vectorized is None or kernels is None:
        return
    kernel_keys = _string_keys(kernels)
    vec_keys = _string_keys(vectorized)
    class_kernels = _class_kernels(vec)

    reg = index.module(ALGORITHMS_PATH)
    if reg is not None:
        algorithms = _dict_assignment(reg, "ALGORITHMS")
        if algorithms is not None:
            algo_keys = _string_keys(algorithms)
            for name, line in sorted(vec_keys.items()):
                if name not in algo_keys:
                    yield Finding(
                        path=vec.relpath, line=line, col=0, rule="REG001",
                        message=f"vectorized entry {name!r} has no ALGORITHMS "
                                "registry entry — unreachable by registry name",
                    )

    # Classes reachable from VECTORIZED entries, with their advertised kernel.
    advertised: Dict[str, Tuple[str, int]] = {}
    for key_node, value in zip(vectorized.keys, vectorized.values):
        if not (isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)):
            continue
        cls = _entry_class(value)
        if cls is not None and cls in class_kernels:
            advertised[key_node.value] = class_kernels[cls]

    for name, (kernel_name, line) in sorted(advertised.items()):
        if kernel_name not in kernel_keys:
            yield Finding(
                path=vec.relpath, line=line, col=0, rule="REG001",
                message=f"vectorized {name!r} advertises kernel {kernel_name!r} "
                        "but KERNELS has no such StepKernel registration",
            )

    advertised_kernels = {kernel for kernel, _ in advertised.values()}
    for kernel_name, line in sorted(kernel_keys.items()):
        if kernel_name not in advertised_kernels:
            yield Finding(
                path=ker.relpath, line=line, col=0, rule="REG001",
                message=f"StepKernel {kernel_name!r} is registered but no "
                        "VECTORIZED class advertises it — dead kernel the "
                        "engine can never select",
            )

    parity = index.module(PARITY_TEST_PATH)
    if parity is None:
        first = min(kernel_keys.values(), default=1)
        yield Finding(
            path=ker.relpath, line=first, col=0, rule="REG001",
            message=f"kernel parity test module {PARITY_TEST_PATH} not found — "
                    "fused kernels without a bit-parity suite",
        )
        return
    if _imports_kernels_registry(parity):
        return  # parametrizes over KERNELS itself: covers every entry.
    literals = _string_literals(parity)
    for kernel_name, line in sorted(kernel_keys.items()):
        if kernel_name not in literals:
            yield Finding(
                path=ker.relpath, line=line, col=0, rule="REG001",
                message=f"kernel {kernel_name!r} is never referenced by "
                        f"{PARITY_TEST_PATH} — add it to the parity suite "
                        "(or parametrize over KERNELS)",
            )
