"""Project-wide parsed-module index the lint rules run over.

Every ``.py`` file under the requested paths is parsed once into a
:class:`ParsedModule` — AST, source lines, per-line suppression pragmas
and a lazily built child→parent node map — and collected into a
:class:`ModuleIndex` keyed by POSIX path relative to the project root.
Per-module rules receive one module at a time (path-scoped via the rule's
``scopes``); project rules (cross-file completeness checks) receive the
whole index and can pull additional modules in by relative path.

Suppression pragmas
-------------------

A finding is suppressed by a comment on its own line::

    rng = np.random.default_rng()  # reprolint: allow[RNG001] reason=caller owns determinism

``allow[...]`` takes a comma-separated rule list; ``reason=`` captures
the rest of the comment and is **mandatory** — a reasonless pragma is
itself reported (SUP001, not suppressible), so every escape hatch in the
tree carries its justification.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ModuleIndex",
    "ParsedModule",
    "Suppression",
    "dotted_name",
    "iter_paths",
]

#: Directory names never scanned: caches, VCS internals and ``data``
#: fixture trees (the lint test fixtures under ``tests/data/lint`` are
#: deliberate violations and must not gate the real tree).
EXCLUDED_DIRS = {"__pycache__", ".git", ".hg", "data", "build", "dist", ".eggs"}

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*allow\[([A-Za-z0-9_*,\s]*)\]\s*(?:reason=\s*(.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One ``# reprolint: allow[...]`` pragma attached to a source line."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    def allows(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ParsedModule:
    """One parsed source file plus its pragmas and parent links."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, List[Suppression]] = field(default_factory=dict)
    _parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "ParsedModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            suppressions=_parse_pragmas(source),
        )

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (lazily built once per module)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)

    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        for sup in self.suppressions.get(line, ()):
            if sup.allows(rule):
                return sup
        return None

    def imported_names(self, modules: Tuple[str, ...]) -> set:
        """Local aliases bound by ``from <module> import name`` statements."""
        names = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module in modules:
                for alias in node.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
        return names


def _parse_pragmas(source: str) -> Dict[int, List[Suppression]]:
    """All ``reprolint: allow`` comments, keyed by line.

    Tokenized, not regex-over-lines, so a ``#`` inside a string literal
    never reads as a pragma.  Unreadable tails (tokenize errors after a
    syntactically valid parse are near-impossible, but defensive) keep
    the pragmas collected so far.
    """
    pragmas: Dict[int, List[Suppression]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if not match:
                continue
            rules = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            reason = (match.group(2) or "").strip()
            pragmas.setdefault(tok.start[0], []).append(
                Suppression(line=tok.start[0], rules=rules, reason=reason)
            )
    except tokenize.TokenizeError:
        pass
    return pragmas


def iter_paths(paths: List[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through verbatim)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for sub in sorted(path.rglob("*.py")):
            parts = set(sub.relative_to(path).parts[:-1])
            if parts & EXCLUDED_DIRS or any(p.startswith(".") for p in parts):
                continue
            yield sub


class ModuleIndex:
    """Parsed modules keyed by POSIX path relative to the project root."""

    def __init__(self, root: Path) -> None:
        self.root = root.resolve()
        self.modules: Dict[str, ParsedModule] = {}
        self.errors: List[Tuple[str, int, str]] = []  # (relpath, line, message)

    @classmethod
    def build(cls, paths: List[str | Path], root: str | Path | None = None) -> "ModuleIndex":
        resolved = [Path(p).resolve() for p in paths]
        if root is None:
            root = Path.cwd()
        index = cls(Path(root))
        for path in iter_paths(resolved):
            index.add(path)
        return index

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    def add(self, path: Path) -> Optional[ParsedModule]:
        relpath = self._relpath(path)
        if relpath in self.modules:
            return self.modules[relpath]
        try:
            module = ParsedModule.parse(path, relpath)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            self.errors.append((relpath, int(line), f"unparseable module: {exc}"))
            return None
        self.modules[relpath] = module
        return module

    def module(self, relpath: str) -> Optional[ParsedModule]:
        """Module by root-relative path, loading from disk on demand.

        Project rules use this to reach files outside the linted paths —
        e.g. REG001 linting ``src`` still reads ``tests/test_kernels.py``
        to verify the parity tests cover every kernel.
        """
        if relpath in self.modules:
            return self.modules[relpath]
        path = self.root / relpath
        if path.is_file():
            return self.add(path)
        return None

    def __iter__(self) -> Iterator[ParsedModule]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)
