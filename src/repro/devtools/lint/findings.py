"""The :class:`Finding` record every lint rule emits.

A finding pins one invariant violation to a file position.  Findings are
plain frozen dataclasses ordered by ``(path, line, col, rule)`` so human
and ``--json`` output are deterministic regardless of rule execution
order — the same order-stability discipline rule DET001 enforces on
digest inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position (1-based line, 0-based col)."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1} {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
