"""Lint-rule registry — the same plugin idiom as the algorithm registries.

A rule is a named check function plus metadata:

* ``scopes`` — root-relative POSIX path prefixes the rule applies to
  (``None`` = every module).  Scoping lives here, not inside the checks,
  so ``mobile-server lint --list`` can show where each contract holds.
* ``project`` — per-module rules receive ``(module, index)`` and run once
  per in-scope file; project rules receive ``(index,)`` once and perform
  cross-file completeness checks (REG001, API001).

New rules self-register at import via the :func:`rule` decorator —
adding a file under :mod:`repro.devtools.lint.rules` is the entire
integration, mirroring how algorithms join ``ALGORITHMS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "RULES",
    "LintRule",
    "available_rules",
    "register_rule",
    "rule",
    "rule_info",
]


@dataclass(frozen=True)
class LintRule:
    """One registered invariant check."""

    name: str
    summary: str
    check: Callable
    scopes: Optional[Tuple[str, ...]] = None
    project: bool = False

    def applies_to(self, relpath: str) -> bool:
        if self.scopes is None:
            return True
        return any(
            relpath == scope or relpath.startswith(scope) for scope in self.scopes
        )


RULES: Dict[str, LintRule] = {}


def register_rule(entry: LintRule, overwrite: bool = False) -> None:
    if entry.name in RULES and not overwrite:
        raise KeyError(f"lint rule {entry.name!r} already registered")
    RULES[entry.name] = entry


def rule(
    name: str,
    summary: str,
    *,
    scopes: Tuple[str, ...] | None = None,
    project: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as rule ``name``."""

    def deco(fn: Callable) -> Callable:
        register_rule(
            LintRule(name=name, summary=summary, check=fn, scopes=scopes, project=project)
        )
        return fn

    return deco


def rule_info(name: str) -> LintRule:
    try:
        return RULES[name]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {name!r}; available: {', '.join(sorted(RULES))}"
        ) from None


def available_rules() -> list[str]:
    """Sorted registry keys."""
    return sorted(RULES)
