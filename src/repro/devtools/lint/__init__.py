"""``reprolint`` — AST-based invariant linter for the reproduction.

The parity tests prove determinism, crash-safety and kernel parity
*after the fact*; this package enforces the code shapes those proofs
rest on *by construction*:

========  ==============================================================
RNG001    no seedless ``default_rng()`` / legacy ``np.random.*`` globals
          in ``src/`` (silent nondeterminism)
CLK001    no wall-clock reads flowing into digest/store/spool-task
          content (timing-only bindings allowlisted)
IO001     file writes in the store/executor layers route through
          tmp+rename, never bare ``open(.., "w")``
DET001    digest inputs are order-stable: ``sort_keys`` JSON, no set
          iteration feeding ``hashlib``
REG001    kernel-tagged algorithms ↔ ``KERNELS`` registrations ↔ parity
          tests stay complete across files
API001    ``__all__`` matches real bindings; deprecation shims raise
          ``DeprecationWarning``
========  ==============================================================

Run it as ``mobile-server lint [paths ...]`` (``--json`` for the machine
schema, ``--list`` for the rule table); CI gates on a clean tree.  Rules
are plugins: a module under :mod:`repro.devtools.lint.rules` registers
itself with the :func:`~repro.devtools.lint.registry.rule` decorator —
the same registry idiom algorithms and workloads use.  Per-line escape
hatch: ``# reprolint: allow[RULE] reason=...`` (the reason is mandatory
and audited).
"""

from .findings import Finding
from .index import ModuleIndex, ParsedModule, Suppression
from .registry import RULES, LintRule, available_rules, register_rule, rule, rule_info
from .runner import JSON_SCHEMA_VERSION, META_RULES, LintReport, run_lint
from . import rules  # noqa: F401  (imports populate RULES)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "META_RULES",
    "RULES",
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleIndex",
    "ParsedModule",
    "Suppression",
    "available_rules",
    "register_rule",
    "rule",
    "rule_info",
    "run_lint",
]
