"""Run the registered rules over a module index and report.

:func:`run_lint` is the single entry point the CLI, CI and the tests
share: build the index, run every (selected) rule, apply suppression
pragmas, and fold in the linter's own meta-findings:

* ``LNT000`` — a file that does not parse (kept as a finding so a broken
  tree fails the gate instead of being silently skipped);
* ``SUP001`` — an ``allow[...]`` pragma without a ``reason=`` (every
  suppression must carry its justification; not itself suppressible);
* ``SUP002`` — a pragma allowing a rule name that does not exist
  (catches typos that would otherwise silently suppress nothing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .findings import Finding
from .index import ModuleIndex
from .registry import RULES, rule_info

__all__ = ["LintReport", "run_lint"]

JSON_SCHEMA_VERSION = 1

#: Meta-rules emitted by the runner itself; never suppressible, always on.
META_RULES = {
    "LNT000": "file does not parse",
    "SUP001": "allow[...] pragma without reason= justification",
    "SUP002": "allow[...] pragma names an unknown rule",
}


@dataclass
class LintReport:
    """Outcome of one lint pass."""

    findings: List[Finding]
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json_dict(self) -> dict:
        return {
            "version": JSON_SCHEMA_VERSION,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "counts": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        tail = (
            f"reprolint: {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed ({self.files} file(s), "
            f"{len(self.rules)} rule(s))"
        )
        lines.append(tail)
        return "\n".join(lines)


def _select_rules(select: Optional[Sequence[str]]) -> List[str]:
    import repro.devtools.lint.rules  # noqa: F401  (self-registration import)

    if select is None:
        return sorted(RULES)
    names = []
    for name in select:
        rule_info(name)  # raises KeyError with the available list on typos
        names.append(name)
    return sorted(set(names))


def run_lint(
    paths: Iterable[str | Path],
    root: str | Path | None = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) with the registered rules.

    ``root`` anchors the relative paths rules scope on (default: the
    current working directory — run from the repository root, as CI
    does).  ``select`` restricts to a subset of rule names.
    """
    names = _select_rules(select)
    index = ModuleIndex.build(list(paths), root=root)

    raw: List[Finding] = []
    for name in names:
        entry = RULES[name]
        if entry.project:
            raw.extend(entry.check(index))
        else:
            for module in index:
                if entry.applies_to(module.relpath):
                    raw.extend(entry.check(module, index))

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        module = index.modules.get(finding.path)
        sup = (
            module.suppression_for(finding.line, finding.rule)
            if module is not None
            else None
        )
        if sup is not None:
            suppressed.append(finding)
        else:
            findings.append(finding)

    # The linter's own meta-findings (never suppressible).
    for relpath, line, message in index.errors:
        findings.append(Finding(path=relpath, line=line, col=0,
                                rule="LNT000", message=message))
    known = set(RULES) | set(META_RULES)
    for module in index:
        for sups in module.suppressions.values():
            for sup in sups:
                if not sup.reason:
                    findings.append(Finding(
                        path=module.relpath, line=sup.line, col=0, rule="SUP001",
                        message="suppression without reason= — every allow[...] "
                                "pragma must say why the invariant is waived",
                    ))
                for rule_name in sup.rules:
                    if rule_name != "*" and rule_name not in known:
                        findings.append(Finding(
                            path=module.relpath, line=sup.line, col=0,
                            rule="SUP002",
                            message=f"pragma allows unknown rule {rule_name!r} "
                                    "— typo? nothing is suppressed",
                        ))

    return LintReport(
        findings=sorted(set(findings)),
        suppressed=sorted(set(suppressed)),
        files=len(index),
        rules=names,
    )
