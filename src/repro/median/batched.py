"""Cross-lane batched geometric-median solver.

:func:`batched_request_center` answers ``B`` independent
:func:`repro.median.request_center` queries — one ``(r, d)`` request batch
and one server position per lane — in whole-batch NumPy passes, and is the
engine of the fused median-family step kernels
(:mod:`repro.core.kernels`).  Per lane it is **bit-identical** to the
scalar solver: every case of the scalar routing is replayed with the same
float64 operations in the same order.

How bit-parity is achieved
--------------------------

* the exact-case routing (``median_single`` / ``median_pair`` /
  coincident / collinear) is reproduced from the same centred SVD the
  scalar :func:`repro.median.exact.collinearity_frame` uses — LAPACK
  factors each matrix of a stacked ``(B, r, d)`` SVD exactly as it
  factors the matrix alone;
* scalar ``np.dot`` contractions (the segment projection in
  ``MedianSet.closest_point_to``, Weiszfeld's convergence test) go
  through BLAS ``ddot``, whose FMA accumulation differs from ``einsum``
  — the batched path reproduces them with vector-shaped ``matmul``
  (``(B, 1, d) @ (B, d, 1)``), which NumPy routes to the same ``ddot``
  per lane;
* line projections ``(points - origin) @ u`` become stacked GEMV calls
  (``(B, r, d) @ (B, d, 1)``), again the same BLAS routine per lane;
* all ``r``-axis reductions run over a contiguous trailing axis so
  NumPy's pairwise blocking matches the scalar ``(r, d)`` sums;
* Weiszfeld lanes iterate under an active mask (converged lanes drop
  out, exactly like the scalar early ``break``); the rare lanes that
  land *on* a data point mid-iteration — the Vardi–Zhang branch — are
  replayed through the scalar solver from the same start, which
  reproduces the batched prefix bit-for-bit and then finishes with the
  scalar safeguard.

``tests/test_median_batched.py`` asserts equality with the per-lane
scalar solver over degenerate grids (r ∈ {1, 2, 3, ...}, duplicated
points, collinear stacks, warm starts on and off).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .weiszfeld import weiszfeld

__all__ = [
    "BatchedMedianSet",
    "batched_median_set",
    "batched_request_center",
    "batched_weiszfeld",
]


def _stacked_dot(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-lane ``float(np.dot(u[i], v[i]))`` for ``(B, d)`` stacks.

    ``np.dot`` on two vectors calls BLAS ``ddot``; a vector-shaped
    ``matmul`` dispatches each ``(1, d) @ (d, 1)`` slice to the same
    routine, so every lane reproduces the scalar contraction bit-for-bit
    (a plain ``einsum`` would not — see the module docstring).
    """
    return np.matmul(u[:, None, :], v[:, :, None])[:, 0, 0]


def _segment_closest(a: np.ndarray, b: np.ndarray, servers: np.ndarray) -> np.ndarray:
    """Batched ``MedianSet(a, b)`` tie-break against per-lane servers.

    Mirrors the scalar flow: unique sets (``|a - b| <= 1e-12`` in every
    coordinate, the ``np.allclose`` test) return a copy of ``a``; proper
    segments return the clamped orthogonal projection of the server.
    """
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    out = np.array(a, copy=True)
    tie = ~np.all(np.abs(a - b) <= 1e-12, axis=1)
    if np.any(tie):
        aa = np.ascontiguousarray(a[tie])
        bb = np.ascontiguousarray(b[tie])
        pp = np.ascontiguousarray(servers[tie])
        ab = bb - aa
        denom = _stacked_dot(ab, ab)
        num = _stacked_dot(pp - aa, ab)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = num / denom
        t = np.minimum(1.0, np.maximum(0.0, t))
        # The scalar clamp is Python's max(0.0, t), which yields +0.0;
        # adding +0.0 normalizes a possible -0.0 without moving any
        # other value.
        t += 0.0
        proj = aa + t[:, None] * ab
        degenerate = denom <= 0.0
        if np.any(degenerate):
            proj[degenerate] = aa[degenerate]
        out[tie] = proj
    return out


@dataclass(frozen=True)
class BatchedMedianSet:
    """Per-lane :class:`repro.median.exact.MedianSet` endpoints.

    ``numeric[i]`` marks lanes whose median has no closed form
    (non-collinear ``r >= 3``); their ``a``/``b`` rows are zeros and the
    caller must run Weiszfeld.  All other lanes carry the exact segment
    endpoints (``a == b`` encodes a unique minimizer).
    """

    a: np.ndarray
    b: np.ndarray
    numeric: np.ndarray


def batched_median_set(points: np.ndarray, atol: float = 1e-9) -> BatchedMedianSet:
    """Vectorized :func:`repro.median.median_set` over a ``(B, r, d)`` stack."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3:
        raise ValueError(f"expected a (B, r, d) stack, got shape {points.shape}")
    B, r, d = points.shape
    if r == 0:
        raise ValueError("median of an empty batch is undefined")
    if r == 1:
        a = np.array(points[:, 0], copy=True)
        return BatchedMedianSet(a, a.copy(), np.zeros(B, dtype=bool))
    if r == 2:
        return BatchedMedianSet(
            np.array(points[:, 0], copy=True),
            np.array(points[:, 1], copy=True),
            np.zeros(B, dtype=bool),
        )
    a = np.zeros((B, d))
    b = np.zeros((B, d))
    origin = points.mean(axis=1)
    centred = points - origin[:, None, :]
    svals = np.linalg.svd(centred, compute_uv=False)
    lead = svals[:, 0]
    coincide = lead <= atol
    if svals.shape[1] > 1:
        line = ~coincide & (svals[:, 1] <= atol * np.maximum(1.0, lead))
    else:  # d == 1: every batch is collinear
        line = ~coincide
    numeric = ~(coincide | line)
    if np.any(coincide):
        a[coincide] = origin[coincide]
        b[coincide] = origin[coincide]
    idx = np.nonzero(line)[0]
    if idx.size:
        c_sel = np.ascontiguousarray(centred[idx])
        _, _, vt = np.linalg.svd(c_sel, full_matrices=False)
        u = np.ascontiguousarray(vt[:, 0])  # (n, d) line directions
        # (points - origin) @ u per lane: a stacked GEMV, same BLAS call
        # as the scalar projection.
        coords = np.matmul(c_sel, u[:, :, None])[:, :, 0]
        order = np.sort(coords, axis=1)
        if r % 2 == 1:
            p = origin[idx] + order[:, r // 2, None] * u
            a[idx] = p
            b[idx] = p
        else:
            a[idx] = origin[idx] + order[:, r // 2 - 1, None] * u
            b[idx] = origin[idx] + order[:, r // 2, None] * u
    return BatchedMedianSet(a, b, numeric)


def batched_weiszfeld(
    points: np.ndarray,
    starts: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> np.ndarray:
    """Per-lane :func:`repro.median.weiszfeld` over a ``(B, r, d)`` stack.

    Returns the ``(B, d)`` median points.  ``starts`` defaults to the
    per-lane centroids (the scalar default).  Lanes converge and drop out
    of the active set independently; lanes that hit the Vardi–Zhang
    vertex branch are replayed through the scalar solver (identical
    prefix, then the scalar safeguard), so every lane matches
    ``weiszfeld(points[i], start=starts[i]).point`` bit-for-bit.
    """
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    if points.ndim != 3:
        raise ValueError(f"expected a (B, r, d) stack, got shape {points.shape}")
    B, r, d = points.shape
    if r == 0:
        raise ValueError("geometric median of an empty batch is undefined")
    if B == 0:
        return np.empty((0, d))
    if r == 1:
        return np.array(points[:, 0], copy=True)

    if starts is None:
        y = points.mean(axis=1)
    else:
        y = np.array(np.asarray(starts, dtype=np.float64), copy=True)
        if y.shape != (B, d):
            raise ValueError(f"starts must have shape {(B, d)}, got {y.shape}")
    start_ref = np.array(y, copy=True)

    scale = np.abs(points).max(axis=(1, 2)) + 1.0
    atol_vertex = 1e-14 * scale
    tol2 = (tol * scale) ** 2

    idx = np.arange(B)
    P = points
    ycur = y
    vertex: list[int] = []
    it = 0
    while idx.size and it < max_iter:
        it += 1
        diff = P - ycur[:, None, :]
        dists = np.sqrt(np.einsum("brd,brd->br", diff, diff))
        hit = dists.min(axis=1) <= atol_vertex[idx]
        if np.any(hit):
            # The iterate sits on a data point: the smooth map is
            # undefined there.  Hand the lane to the scalar solver, which
            # replays the identical iterates and applies Vardi-Zhang.
            vertex.extend(int(i) for i in idx[hit])
            keep = ~hit
            idx = idx[keep]
            if not idx.size:
                break
            P = np.ascontiguousarray(P[keep])
            ycur = np.ascontiguousarray(ycur[keep])
            dists = np.ascontiguousarray(dists[keep])
        inv = 1.0 / dists
        y_new = (P * inv[:, :, None]).sum(axis=1) / inv.sum(axis=1)[:, None]
        step = y_new - ycur
        y[idx] = y_new
        # The scalar convergence test is np.dot(step, step) — BLAS ddot.
        done = _stacked_dot(step, step) <= tol2[idx]
        if np.any(done):
            keep = ~done
            idx = idx[keep]
            P = np.ascontiguousarray(P[keep])
            ycur = np.ascontiguousarray(y_new[keep])
        else:
            ycur = y_new

    for i in vertex:
        y[i] = weiszfeld(points[i], start=start_ref[i], tol=tol,
                         max_iter=max_iter).point

    # Post-loop vertex snap for every lane the smooth iteration finished
    # (the scalar path runs this whenever on_vertex is False).
    smooth = np.ones(B, dtype=bool)
    if vertex:
        smooth[vertex] = False
    sidx = np.nonzero(smooth)[0]
    if sidx.size:
        Ps = points[sidx]
        diff = Ps - y[sidx][:, None, :]
        dists = np.sqrt(np.einsum("brd,brd->br", diff, diff))
        nearest = np.argmin(dists, axis=1)
        rows = np.arange(sidx.size)
        cand = dists[rows, nearest] <= 1e-4 * scale[sidx]
        cidx = np.nonzero(cand)[0]
        if cidx.size:
            Pc = np.ascontiguousarray(Ps[cidx])
            y_cost = np.ascontiguousarray(dists[cidx]).sum(axis=1)
            vpts = Pc[np.arange(cidx.size), nearest[cidx]]
            vdiff = Pc - vpts[:, None, :]
            v_cost = np.sqrt(np.einsum("brd,brd->br", vdiff, vdiff)).sum(axis=1)
            ok = v_cost <= y_cost + 1e-12 * (1.0 + y_cost)
            if np.any(ok):
                y[sidx[cidx[ok]]] = vpts[ok]
    return y


def batched_request_center(
    points: np.ndarray,
    servers: np.ndarray,
    *,
    warm_starts: np.ndarray | None = None,
    warm_mask: np.ndarray | None = None,
    atol: float = 1e-9,
) -> np.ndarray:
    """Per-lane :func:`repro.median.request_center` over a ``(B, r, d)`` stack.

    Parameters
    ----------
    points:
        ``(B, r, d)`` request stack, ``r >= 1`` (uniform across lanes —
        exactly the packed layout the fused kernels consume).
    servers:
        ``(B, d)`` server positions, used only for tie-breaking.
    warm_starts:
        Optional ``(B, d)`` initial iterates for the numeric lanes (the
        previous step's centers, in MtC's case).  Ignored for lanes whose
        median has a closed form.
    warm_mask:
        Optional ``(B,)`` bool mask selecting which warm starts are
        valid; lanes outside the mask start from the centroid, like a
        scalar ``warm_start=None`` call.  ``None`` means every lane is
        warm when ``warm_starts`` is given.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3:
        raise ValueError(f"expected a (B, r, d) stack, got shape {points.shape}")
    B, r, d = points.shape
    if r == 0:
        raise ValueError("median of an empty batch is undefined")
    if not np.all(np.isfinite(points)):
        raise ValueError("point batch contains non-finite coordinates")
    servers = np.asarray(servers, dtype=np.float64)
    if servers.shape != (B, d):
        raise ValueError(f"servers must have shape {(B, d)}, got {servers.shape}")
    if B == 0:
        return np.empty((0, d))
    if r == 1:
        return np.array(points[:, 0], copy=True)
    if r == 2:
        return _segment_closest(points[:, 0], points[:, 1], servers)

    mset = batched_median_set(points, atol=atol)
    out = np.empty((B, d))
    exact = ~mset.numeric
    if np.any(exact):
        out[exact] = _segment_closest(mset.a[exact], mset.b[exact], servers[exact])
    idx = np.nonzero(mset.numeric)[0]
    if idx.size:
        pts = np.ascontiguousarray(points[idx])
        starts = pts.mean(axis=1)  # the scalar start=None default, bit-for-bit
        if warm_starts is not None:
            ws = np.asarray(warm_starts, dtype=np.float64)
            if ws.shape != (B, d):
                raise ValueError(
                    f"warm_starts must have shape {(B, d)}, got {ws.shape}")
            if warm_mask is None:
                starts = np.array(ws[idx], copy=True)
            else:
                use = np.asarray(warm_mask, dtype=bool)[idx]
                starts[use] = ws[idx][use]
        out[idx] = batched_weiszfeld(pts, starts)
    return out
