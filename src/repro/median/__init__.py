"""Geometric-median (Fermat–Weber) solvers.

Public API:

* :func:`repro.median.request_center` — the paper's tie-broken center.
* :func:`repro.median.weiszfeld` — safeguarded Weiszfeld iteration.
* :func:`repro.median.weber_cost` — the objective being minimized.
* :class:`repro.median.MedianSet` — explicit minimizing sets for the
  degenerate cases.
* :func:`repro.median.batched_request_center` /
  :func:`repro.median.batched_weiszfeld` — the cross-lane batched
  solver behind the fused median-family step kernels, bit-identical per
  lane to the scalar functions above.
"""

from .batched import (
    BatchedMedianSet,
    batched_median_set,
    batched_request_center,
    batched_weiszfeld,
)
from .exact import (
    MedianSet,
    collinearity_frame,
    fermat_point_triangle,
    median_collinear,
    median_pair,
    median_single,
    weber_cost,
)
from .tie_breaking import median_set, request_center
from .weiszfeld import WeiszfeldResult, weber_gradient_norm, weiszfeld

__all__ = [
    "BatchedMedianSet",
    "MedianSet",
    "WeiszfeldResult",
    "batched_median_set",
    "batched_request_center",
    "batched_weiszfeld",
    "collinearity_frame",
    "fermat_point_triangle",
    "median_collinear",
    "median_pair",
    "median_single",
    "median_set",
    "request_center",
    "weber_cost",
    "weber_gradient_norm",
    "weiszfeld",
]
