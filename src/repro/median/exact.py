"""Closed-form geometric medians for the cases that admit them.

The point :math:`c` minimizing :math:`\\sum_i d(c, v_i)` (the Fermat–Weber
point / geometric median / 1-median) has exact characterisations in several
cases the simulator hits constantly:

* one request: :math:`c = v_1`;
* two requests: every point of the segment :math:`[v_1, v_2]` minimizes;
* collinear requests (in particular everything in dimension 1): the
  coordinate median along the line; for an even count the whole middle
  segment minimizes;
* three requests: the classical Fermat point (a 120°-construction), also
  handled numerically by Weiszfeld but available here for cross-checks.

When the minimizer is a *set*, functions return the set's description so
that :mod:`repro.median.tie_breaking` can pick the paper's representative
(the minimizer closest to the server).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import as_points, distances_to

__all__ = [
    "MedianSet",
    "median_single",
    "median_pair",
    "median_collinear",
    "collinearity_frame",
    "fermat_point_triangle",
    "weber_cost",
]


@dataclass(frozen=True)
class MedianSet:
    """The set of minimizers of the Weber objective.

    The minimizing set of :math:`\\sum_i d(\\cdot, v_i)` is always a
    (possibly degenerate) segment: a single point in the generic case, a
    full segment for two points or an even number of collinear points.

    Attributes
    ----------
    a, b:
        Endpoints of the segment; ``a == b`` encodes a unique minimizer.
    """

    a: np.ndarray
    b: np.ndarray

    @property
    def is_unique(self) -> bool:
        return bool(np.allclose(self.a, self.b, rtol=0.0, atol=1e-12))

    def closest_point_to(self, p: np.ndarray) -> np.ndarray:
        """Orthogonal projection of ``p`` onto the segment ``[a, b]``."""
        ab = self.b - self.a
        denom = float(np.dot(ab, ab))
        if denom <= 0.0:
            return np.array(self.a, copy=True)
        t = float(np.dot(p - self.a, ab)) / denom
        t = min(1.0, max(0.0, t))
        return self.a + t * ab


def weber_cost(c: np.ndarray, points: np.ndarray) -> float:
    """The Weber objective :math:`\\sum_i d(c, v_i)`."""
    points = as_points(points)
    if points.shape[0] == 0:
        return 0.0
    return float(distances_to(np.asarray(c, dtype=np.float64), points).sum())


def median_single(points: np.ndarray) -> MedianSet:
    """Median of a single point: the point itself."""
    points = as_points(points)
    if points.shape[0] != 1:
        raise ValueError(f"median_single expects exactly one point, got {points.shape[0]}")
    return MedianSet(points[0].copy(), points[0].copy())


def median_pair(points: np.ndarray) -> MedianSet:
    """Median set of two points: the whole connecting segment."""
    points = as_points(points)
    if points.shape[0] != 2:
        raise ValueError(f"median_pair expects exactly two points, got {points.shape[0]}")
    return MedianSet(points[0].copy(), points[1].copy())


def collinearity_frame(points: np.ndarray, atol: float = 1e-9) -> tuple[np.ndarray, np.ndarray] | None:
    """Detect collinearity; return ``(origin, unit_direction)`` or ``None``.

    Uses the singular values of the centred batch: the points are collinear
    iff all but the leading singular value vanish (relative to the spread).
    """
    points = as_points(points)
    r = points.shape[0]
    if r <= 1:
        return points[0].copy() if r else None, np.zeros(points.shape[1]) if r else None
    origin = points.mean(axis=0)
    centred = points - origin
    # SVD of an (r, d) matrix; singular values sorted descending.
    svals = np.linalg.svd(centred, compute_uv=False)
    scale = float(svals[0]) if svals.size else 0.0
    if scale <= atol:  # all points (numerically) coincide
        return origin, np.zeros(points.shape[1])
    if svals.size > 1 and float(svals[1]) > atol * max(1.0, scale):
        return None
    # Leading right-singular vector = line direction.
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    return origin, vt[0]


def median_collinear(points: np.ndarray, atol: float = 1e-9) -> MedianSet:
    """Median set of collinear points (includes every 1-D batch).

    Projects onto the line, takes coordinate medians: for odd ``r`` the
    middle point, for even ``r`` the segment between the two middle order
    statistics.

    Raises
    ------
    ValueError
        If the points are not collinear within tolerance.
    """
    points = as_points(points)
    r = points.shape[0]
    if r == 0:
        raise ValueError("median of an empty batch is undefined")
    if r == 1:
        return median_single(points)
    frame = collinearity_frame(points, atol=atol)
    if frame is None:
        raise ValueError("points are not collinear")
    origin, u = frame
    if not np.any(u):  # all coincide
        return MedianSet(origin.copy(), origin.copy())
    coords = (points - origin) @ u
    order = np.sort(coords)
    if r % 2 == 1:
        c = order[r // 2]
        p = origin + c * u
        return MedianSet(p, p.copy())
    lo, hi = order[r // 2 - 1], order[r // 2]
    return MedianSet(origin + lo * u, origin + hi * u)


def fermat_point_triangle(points: np.ndarray, atol: float = 1e-12) -> np.ndarray:
    """Fermat point of a (planar or embedded) triangle.

    If one vertex sees the opposite side under an angle of 120° or more,
    that vertex is the minimizer; otherwise the minimizer is the interior
    point at which all three sides subtend 120°.  The interior case is
    computed by a short, quadratically-convergent Weiszfeld refinement from
    the centroid — the closed trigonometric form is numerically touchier
    and the refinement is exact to machine precision here because the
    optimum is strictly interior (gradient is smooth).
    """
    points = as_points(points)
    if points.shape[0] != 3:
        raise ValueError("fermat_point_triangle expects exactly three points")
    # Vertex test: angle at vertex i >= 120 degrees?
    for i in range(3):
        a = points[i]
        b = points[(i + 1) % 3]
        c = points[(i + 2) % 3]
        u, v = b - a, c - a
        nu = np.sqrt(np.dot(u, u))
        nv = np.sqrt(np.dot(v, v))
        if nu <= atol or nv <= atol:
            # Degenerate triangle with a repeated vertex: that vertex wins
            # (it absorbs multiplicity 2 of the Weber weights).
            return a.copy()
        cosang = float(np.dot(u, v) / (nu * nv))
        if cosang <= -0.5 + 1e-15:
            return a.copy()
    # Interior optimum: safeguarded Weiszfeld from the centroid.
    y = points.mean(axis=0)
    for _ in range(200):
        diff = points - y
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        if np.any(dists <= atol):
            break  # landed on a vertex; vertex test above says interior, nudge
        w = 1.0 / dists
        y_new = (points * w[:, None]).sum(axis=0) / w.sum()
        if np.linalg.norm(y_new - y) <= 1e-15 * (1.0 + np.linalg.norm(y)):
            y = y_new
            break
        y = y_new
    return y
