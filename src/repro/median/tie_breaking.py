"""The paper's median selection rule.

Move-to-Center needs *the* point :math:`c` minimizing
:math:`\\sum_i d(c, v_i)`; when the minimizer is not unique the paper picks
"the one minimizing :math:`d(P_{Alg}, c)`" — the representative of the
minimizing set closest to the algorithm's server.  :func:`request_center`
implements exactly that:

* ``r == 1`` → the request itself;
* ``r == 2`` → the projection of the server onto the segment;
* collinear batches (all of dimension 1) → the projection of the server
  onto the median interval;
* otherwise → the unique Weiszfeld point.

The function is the single entry point used by every algorithm, so the
tie-break is consistent across MtC, its ablations, and the analysis code.
"""

from __future__ import annotations

import numpy as np

from ..core.metric import as_points
from .exact import MedianSet, collinearity_frame, median_collinear, median_pair, median_single
from .weiszfeld import weiszfeld

__all__ = ["request_center", "median_set"]


def median_set(points: np.ndarray, atol: float = 1e-9) -> MedianSet | None:
    """Minimizing set of the Weber objective, or ``None`` when it must be
    computed numerically (non-collinear ``r >= 3``)."""
    points = as_points(points)
    r = points.shape[0]
    if r == 0:
        raise ValueError("median of an empty batch is undefined")
    if r == 1:
        return median_single(points)
    if r == 2:
        return median_pair(points)
    if points.shape[1] == 1 or collinearity_frame(points, atol=atol) is not None:
        return median_collinear(points, atol=atol)
    return None


def request_center(
    points: np.ndarray,
    server: np.ndarray,
    atol: float = 1e-9,
    warm_start: np.ndarray | None = None,
) -> np.ndarray:
    """The paper's center :math:`c` for a request batch.

    Parameters
    ----------
    points:
        ``(r, d)`` request batch with ``r >= 1``.
    server:
        Current server position :math:`P_{Alg}`, used only for tie-breaking
        among multiple minimizers.
    warm_start:
        Optional initial iterate for the numeric solver.  Callers that see
        slowly-moving batches (e.g. MtC step after step) pass the previous
        center and typically cut the iteration count by an order of
        magnitude; the result is unaffected (the objective is convex).
    """
    server = np.asarray(server, dtype=np.float64)
    mset = median_set(points, atol=atol)
    if mset is not None:
        if mset.is_unique:
            return np.array(mset.a, copy=True)
        return mset.closest_point_to(server)
    result = weiszfeld(as_points(points), start=warm_start)
    return result.point
