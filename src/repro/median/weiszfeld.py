"""Safeguarded Weiszfeld iteration for the geometric median.

For three or more non-collinear points the Weber objective
:math:`f(y) = \\sum_i d(y, v_i)` is strictly convex and has a unique
minimizer.  The classical Weiszfeld map

.. math:: T(y) = \\Big(\\sum_i v_i / d_i\\Big) \\Big/ \\Big(\\sum_i 1/d_i\\Big),
          \\qquad d_i = d(y, v_i)

converges to it from almost every start but is undefined *at* the data
points.  We use the Vardi–Zhang (2000) modification, which evaluates the
"pull" of the remaining points when the iterate sits on a data point and
either certifies optimality (the data point absorbs the pull) or steps off
in the pull direction.  This makes the iteration globally well-defined.

The solver intentionally knows nothing about degenerate inputs — callers
route ``r <= 2`` and collinear batches through :mod:`repro.median.exact`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import as_points

__all__ = ["WeiszfeldResult", "weiszfeld", "weber_gradient_norm"]


@dataclass(frozen=True)
class WeiszfeldResult:
    """Outcome of a Weiszfeld solve.

    Attributes
    ----------
    point:
        The computed geometric median.
    iterations:
        Number of fixed-point iterations performed.
    converged:
        Whether the movement tolerance was met before ``max_iter``.
    on_vertex:
        True when the optimum is one of the input points (certified by the
        Vardi–Zhang criterion).
    """

    point: np.ndarray
    iterations: int
    converged: bool
    on_vertex: bool


def weber_gradient_norm(y: np.ndarray, points: np.ndarray, atol: float = 1e-12) -> float:
    """Norm of the (sub)gradient of the Weber objective at ``y``.

    At a data point the subgradient contains 0 iff the pull of the other
    points is at most the multiplicity of the coinciding points; the value
    returned there is ``max(0, ||pull|| - multiplicity)``, which is 0 exactly
    when ``y`` is optimal.
    """
    points = as_points(points)
    diff = points - y
    dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    on = dists <= atol
    if not np.any(on):
        grad = -(diff / dists[:, None]).sum(axis=0)
        return float(np.linalg.norm(grad))
    multiplicity = float(on.sum())
    rest = ~on
    if not np.any(rest):
        return 0.0
    pull = (diff[rest] / dists[rest, None]).sum(axis=0)
    return max(0.0, float(np.linalg.norm(pull)) - multiplicity)


def weiszfeld(
    points: np.ndarray,
    start: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> WeiszfeldResult:
    """Compute the geometric median of ``points``.

    Parameters
    ----------
    points:
        ``(r, d)`` batch, ``r >= 1``.
    start:
        Initial iterate; defaults to the centroid (which is never a data
        point for non-degenerate batches and gives monotone descent).
    tol:
        Relative movement tolerance for convergence.
    max_iter:
        Iteration budget; the fixed point is linear-rate so 1000 is ample
        for ``float64`` resolution on well-scaled inputs.
    """
    points = as_points(points)
    r = points.shape[0]
    if r == 0:
        raise ValueError("geometric median of an empty batch is undefined")
    if r == 1:
        return WeiszfeldResult(points[0].copy(), 0, True, True)

    y = points.mean(axis=0) if start is None else np.array(start, dtype=np.float64, copy=True)
    scale = float(np.max(np.abs(points))) + 1.0
    atol_vertex = 1e-14 * scale

    iterations = 0
    on_vertex = False
    converged = False
    tol2 = (tol * scale) ** 2
    for iterations in range(1, max_iter + 1):
        diff = points - y
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        if float(dists.min()) <= atol_vertex:
            on = dists <= atol_vertex
            # Vardi-Zhang step at a data point.
            eta = float(on.sum())
            rest = ~on
            if not np.any(rest):
                on_vertex = True
                converged = True
                break
            inv = 1.0 / dists[rest]
            pull = (diff[rest] * inv[:, None]).sum(axis=0)  # -gradient of the rest
            pull_norm = float(np.linalg.norm(pull))
            if pull_norm <= eta + 1e-15:
                on_vertex = True
                converged = True
                break
            # Standard Weiszfeld map of the non-coinciding points.
            t_y = (points[rest] * inv[:, None]).sum(axis=0) / inv.sum()
            d_vec = t_y - y
            step = max(0.0, 1.0 - eta / pull_norm)
            y_new = y + step * d_vec
        else:
            inv = 1.0 / dists
            y_new = (points * inv[:, None]).sum(axis=0) / inv.sum()
        step_vec = y_new - y
        y = y_new
        if float(np.dot(step_vec, step_vec)) <= tol2:
            converged = True
            break
    if not on_vertex:
        # Vertex optima are only approached asymptotically by the fixed
        # point; snap when the nearest data point is at least as good.
        diff = points - y
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        nearest = int(np.argmin(dists))
        # Generous radius: convergence is sublinear at vertex optima, so the
        # iterate can stall noticeably far out; the cost comparison below
        # makes the snap safe regardless.
        if dists[nearest] <= 1e-4 * scale:
            y_cost = float(np.sqrt(np.einsum("ij,ij->i", diff, diff)).sum())
            vdiff = points - points[nearest]
            v_cost = float(np.sqrt(np.einsum("ij,ij->i", vdiff, vdiff)).sum())
            if v_cost <= y_cost + 1e-12 * (1.0 + y_cost):
                y = points[nearest].copy()
                on_vertex = True
    return WeiszfeldResult(y, iterations, converged, on_vertex)
