"""Random-walk request workloads.

The gentlest realistic workload: a latent *demand point* performs a random
walk with per-step standard deviation ``sigma``, and each step's requests
scatter around it with noise ``spread``.  When ``sigma <= m`` a good online
server can track the demand point closely, so competitive ratios should be
small — the regime where Theorem 4's guarantee is very loose and MtC is
near-optimal in practice.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from .base import WorkloadGenerator, make_instance

__all__ = ["RandomWalkWorkload"]


class RandomWalkWorkload(WorkloadGenerator):
    """Gaussian random-walk demand with scattered requests.

    Parameters
    ----------
    sigma:
        Per-step standard deviation of the latent demand walk (per axis).
    spread:
        Standard deviation of request scatter around the demand point.
    requests_per_step:
        Fixed :math:`r` (the Section-4 setting).
    """

    name = "random-walk"

    def __init__(
        self,
        T: int,
        dim: int = 2,
        D: float = 1.0,
        m: float = 1.0,
        sigma: float = 0.3,
        spread: float = 0.5,
        requests_per_step: int = 1,
    ) -> None:
        super().__init__(T, dim, D, m)
        if sigma < 0 or spread < 0:
            raise ValueError("sigma and spread must be non-negative")
        if requests_per_step < 1:
            raise ValueError("requests_per_step must be positive")
        self.sigma = sigma
        self.spread = spread
        self.r = requests_per_step

    def generate(self, rng: np.random.Generator) -> MSPInstance:
        demand = np.cumsum(rng.normal(scale=self.sigma, size=(self.T, self.dim)), axis=0)
        scatter = rng.normal(scale=self.spread, size=(self.T, self.r, self.dim))
        pts = demand[:, None, :] + scatter
        return make_instance(
            pts,
            start=np.zeros(self.dim),
            D=self.D,
            m=self.m,
            name=f"random-walk[sigma={self.sigma:g},r={self.r}]",
        )
