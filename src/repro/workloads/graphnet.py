"""Graph-space workloads: requests on network topologies.

These generators produce :class:`~repro.core.instance.MSPInstance` objects
whose request points are ``(u, v, t)`` encodings of positions on a weighted
graph (see :func:`repro.core.metric.graph_point`) — the inputs of the
``graph`` metric.  Two canonical topologies ship here:

``road``
    A small road network (12 intersections, ring roads plus cross streets
    with heterogeneous travel times) — the mobile-server-on-a-street-map
    picture from the paper's motivation.
``dc``
    A leaf-spine data-center fabric (2 spines, 4 leaves, 8 hosts): requests
    are accesses from hosts, the server is the primary replica migrating
    through the fabric — the page-migration picture.

Requests follow a *hotspot random walk*: a demand center wanders the nodes
(neighbour steps with occasional uniform jumps) and each step's requests
arrive on or adjacent to it — locality an online algorithm can exploit,
with enough churn that staying put loses.

Topologies and their metrics are memoized so every seed of a scenario cell
shares one all-pairs table and geodesic path cache.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.metric import GraphMetric, graph_point
from .base import WorkloadGenerator, make_instance

__all__ = [
    "GraphWorkload",
    "TOPOLOGIES",
    "data_center_network",
    "default_network",
    "road_network",
    "topology_metric",
]

#: Road network: (u, v, travel time).  A ring of arterials with cross
#: streets; weights are deliberately non-uniform so shortest paths are
#: topology-dependent rather than hop counts.
_ROAD_EDGES = [
    (0, 1, 1.0), (1, 2, 1.5), (2, 3, 1.0), (3, 4, 2.0), (4, 5, 1.0),
    (5, 0, 2.5), (1, 6, 1.0), (6, 7, 1.2), (7, 3, 0.8), (6, 8, 2.0),
    (8, 9, 1.0), (9, 10, 1.5), (10, 11, 1.0), (11, 8, 1.2), (9, 4, 2.2),
    (7, 10, 1.7),
]


@lru_cache(maxsize=None)
def road_network():
    """The canonical small road network (12 intersections)."""
    import networkx as nx

    from ..pagemigration.graph import MigrationNetwork

    g = nx.Graph()
    for u, v, w in _ROAD_EDGES:
        g.add_edge(u, v, weight=w)
    return MigrationNetwork.from_graph(g)


@lru_cache(maxsize=None)
def data_center_network():
    """A leaf-spine fabric: spines {0,1}, leaves {2..5}, hosts {6..13}.

    Every leaf uplinks to both spines (weight 2.0); each leaf serves two
    hosts (weight 1.0), so host-to-host latency is 2 within a rack and 6
    across racks.
    """
    import networkx as nx

    from ..pagemigration.graph import MigrationNetwork

    g = nx.Graph()
    for spine in (0, 1):
        for leaf in (2, 3, 4, 5):
            g.add_edge(spine, leaf, weight=2.0)
    for i, leaf in enumerate((2, 3, 4, 5)):
        for host in (6 + 2 * i, 7 + 2 * i):
            g.add_edge(leaf, host, weight=1.0)
    return MigrationNetwork.from_graph(g)


TOPOLOGIES = {"road": road_network, "dc": data_center_network}


def default_network():
    """The network behind the registered ``graph`` metric's default
    instance — the road topology."""
    return road_network()


@lru_cache(maxsize=None)
def topology_metric(topology: str) -> GraphMetric:
    """The (shared) :class:`GraphMetric` of a named topology."""
    if topology not in TOPOLOGIES:
        raise KeyError(
            f"unknown topology {topology!r}; available: {', '.join(sorted(TOPOLOGIES))}")
    return GraphMetric(TOPOLOGIES[topology]())


class GraphWorkload(WorkloadGenerator):
    """Hotspot-random-walk requests on a network topology.

    Parameters
    ----------
    T, D, m:
        As every workload: horizon, movement weight, per-step cap (in
        travel-time units of the topology).
    topology:
        ``"road"`` or ``"dc"``.
    requests_per_step:
        Requests per step; each lands on the hotspot or a neighbour.
    jump_prob:
        Per-step probability the hotspot teleports to a uniform node
        (otherwise it steps to a uniform neighbour).
    """

    def __init__(
        self,
        T: int = 200,
        dim: int = 3,
        D: float = 2.0,
        m: float = 1.0,
        topology: str = "road",
        requests_per_step: int = 2,
        jump_prob: float = 0.15,
    ) -> None:
        if dim != 3:
            raise ValueError(
                f"graph workloads use the (u, v, t) point encoding (dim=3), got dim={dim}")
        super().__init__(T, dim=3, D=D, m=m)
        if requests_per_step < 1:
            raise ValueError("requests_per_step must be positive")
        if not 0.0 <= jump_prob <= 1.0:
            raise ValueError("jump_prob must lie in [0, 1]")
        self.topology = topology
        self.requests_per_step = requests_per_step
        self.jump_prob = jump_prob
        self.metric = topology_metric(topology)
        self.network = self.metric.network
        self.name = f"graph-{topology}"

    def _neighbours(self, node: int) -> list[int]:
        label = self.metric._labels[node]
        return sorted(self.metric._index[v] for v in self.network.graph.neighbors(label))

    def generate(self, rng: np.random.Generator) -> "object":
        n = self.network.n
        hotspot = int(rng.integers(0, n))
        points = np.zeros((self.T, self.requests_per_step, 3))
        for t in range(self.T):
            if rng.random() < self.jump_prob:
                hotspot = int(rng.integers(0, n))
            else:
                nbrs = self._neighbours(hotspot)
                hotspot = int(nbrs[int(rng.integers(0, len(nbrs)))])
            for r in range(self.requests_per_step):
                nbrs = self._neighbours(hotspot)
                choices = [hotspot] + nbrs
                node = int(choices[int(rng.integers(0, len(choices)))])
                points[t, r] = graph_point(node)
        return make_instance(
            points,
            start=graph_point(0),
            D=self.D,
            m=self.m,
            name=f"{self.name}[T={self.T}]",
        )
