"""Autonomous-vehicle platoon workload (the paper's introduction scenario).

A platoon of vehicles drives along a smooth road (piecewise-linear
waypoint path with curvature noise) maintaining formation offsets; each
vehicle requests data from the shared page every step.  The server — e.g.
hosted on one of the cars or a drone — should travel *with* the platoon:
the instantaneous 1-median sits inside the formation and moves at road
speed, so with ``m >= road_speed`` an online algorithm can be near-optimal
while the static/lazy baselines degrade linearly with distance travelled.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from .base import WorkloadGenerator, make_instance

__all__ = ["VehiclePlatoonWorkload"]


class VehiclePlatoonWorkload(WorkloadGenerator):
    """A vehicle platoon following a noisy road.

    Parameters
    ----------
    n_vehicles:
        Platoon size (= requests per step).
    road_speed:
        Platoon displacement per step.
    turn_sigma:
        Heading noise per step in radians (2-D only; 1-D roads are
        straight).
    formation_radius:
        Vehicles hold random but fixed offsets within this radius of the
        platoon reference point.
    jitter:
        Per-step per-vehicle positional noise (lane keeping).
    """

    name = "vehicles"

    def __init__(
        self,
        T: int,
        dim: int = 2,
        D: float = 8.0,
        m: float = 1.0,
        n_vehicles: int = 6,
        road_speed: float = 0.8,
        turn_sigma: float = 0.05,
        formation_radius: float = 2.0,
        jitter: float = 0.05,
    ) -> None:
        super().__init__(T, dim, D, m)
        if n_vehicles < 1:
            raise ValueError("n_vehicles must be positive")
        if road_speed < 0:
            raise ValueError("road_speed must be non-negative")
        self.n_vehicles = n_vehicles
        self.road_speed = road_speed
        self.turn_sigma = turn_sigma
        self.formation_radius = formation_radius
        self.jitter = jitter

    def generate(self, rng: np.random.Generator) -> MSPInstance:
        offsets = rng.uniform(-self.formation_radius, self.formation_radius,
                              size=(self.n_vehicles, self.dim))
        heading = rng.uniform(0.0, 2.0 * np.pi) if self.dim == 2 else 0.0
        ref = np.zeros(self.dim)
        pts = np.empty((self.T, self.n_vehicles, self.dim))
        for t in range(self.T):
            if self.dim == 2:
                heading += rng.normal(scale=self.turn_sigma)
                step = self.road_speed * np.array([np.cos(heading), np.sin(heading)])
            else:
                step = np.full(self.dim, self.road_speed / np.sqrt(self.dim))
            ref = ref + step
            noise = rng.normal(scale=self.jitter, size=(self.n_vehicles, self.dim))
            pts[t] = ref[None, :] + offsets + noise
        return make_instance(
            pts,
            start=offsets.mean(axis=0),
            D=self.D,
            m=self.m,
            name=f"vehicles[n={self.n_vehicles},v={self.road_speed:g}]",
        )
