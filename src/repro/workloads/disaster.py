"""Disaster-response agent workloads (Section 5's motivating scenario).

Helpers move through a disaster area — waypoint patrols with pauses — and
the mobile signal station (the server) should follow them.  The generator
produces :class:`~repro.core.instance.MovingClientInstance` objects whose
agent trajectories respect the speed limit ``m_agent`` exactly, for the
Moving Client experiments (E7/E8): with ``m_server >= m_agent`` Theorem 10
predicts O(1) ratios, with a faster agent Theorem 8 predicts divergence.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MovingClientInstance

__all__ = ["PatrolAgentWorkload", "random_waypoint_path"]


def random_waypoint_path(
    T: int,
    dim: int,
    speed: float,
    rng: np.random.Generator,
    arena: float = 25.0,
    pause_probability: float = 0.1,
    pause_length: int = 5,
) -> np.ndarray:
    """Random-waypoint mobility model, speed-exact.

    The agent picks a uniform waypoint in ``[-arena, arena]^d``, walks
    towards it at exactly ``speed`` per step (final approach may be
    shorter), optionally pauses, then repeats.  Returns ``(T, d)``
    positions starting from the origin.
    """
    pos = np.zeros(dim)
    path = np.empty((T, dim))
    target = rng.uniform(-arena, arena, size=dim)
    pause = 0
    for t in range(T):
        if pause > 0:
            pause -= 1
        else:
            to = target - pos
            d = float(np.linalg.norm(to))
            if d <= speed:
                pos = target.copy()
                target = rng.uniform(-arena, arena, size=dim)
                if rng.random() < pause_probability:
                    pause = pause_length
            else:
                pos = pos + (speed / d) * to
        path[t] = pos
    return path


class PatrolAgentWorkload:
    """Moving-client instances driven by a random-waypoint agent.

    Parameters
    ----------
    T, dim, D:
        As usual.
    m_server, m_agent:
        Speed limits; Theorem 10 needs ``m_server >= m_agent``, Theorem 8
        is about the opposite regime.
    arena, pause_probability, pause_length:
        Mobility-model parameters (see :func:`random_waypoint_path`).
    """

    name = "patrol-agent"

    def __init__(
        self,
        T: int,
        dim: int = 2,
        D: float = 4.0,
        m_server: float = 1.0,
        m_agent: float = 1.0,
        arena: float = 25.0,
        pause_probability: float = 0.1,
        pause_length: int = 5,
    ) -> None:
        if T < 1:
            raise ValueError("T must be positive")
        self.T = T
        self.dim = dim
        self.D = D
        self.m_server = m_server
        self.m_agent = m_agent
        self.arena = arena
        self.pause_probability = pause_probability
        self.pause_length = pause_length

    def generate(self, rng: np.random.Generator) -> MovingClientInstance:
        path = random_waypoint_path(
            self.T,
            self.dim,
            self.m_agent,
            rng,
            arena=self.arena,
            pause_probability=self.pause_probability,
            pause_length=self.pause_length,
        )
        return MovingClientInstance(
            agent_path=path,
            start=np.zeros(self.dim),
            D=self.D,
            m_server=self.m_server,
            m_agent=self.m_agent,
            name=f"patrol[ms={self.m_server:g},ma={self.m_agent:g}]",
        )

    def generate_many(self, seeds: list[int]) -> list[MovingClientInstance]:
        return [self.generate(np.random.default_rng(s)) for s in seeds]
