"""k-server-on-the-line workloads for the re-homed baselines.

One instance is the *configuration-space* form of a k-server input: the
start is the sorted initial configuration (a point in
:math:`\\mathbb{R}^k`), each step carries one request at location ``x``
encoded as the constant point ``np.full(k, x)``, and the cost model is
:data:`~repro.core.costs.CostModel.MOVEMENT_ONLY` — run it under the
``l1`` metric and total cost is exactly the servers' total movement
(see :mod:`repro.algorithms.kserver_line`).
"""

from __future__ import annotations

import numpy as np

from ..core.costs import CostModel
from .base import WorkloadGenerator, make_instance

__all__ = ["KServerLineWorkload"]


class KServerLineWorkload(WorkloadGenerator):
    """Uniform requests on a line segment for ``k`` servers.

    Parameters
    ----------
    T:
        Number of requests (one per step).
    dim:
        The number of servers ``k`` — the configuration-space dimension.
    D:
        Movement weight (the classical problem has ``D = 1``).
    m:
        Per-step movement cap in configuration space; the default
        ``4 * width`` never binds (one Double Coverage step moves at
        most ``2 * width`` in ℓ1), preserving the uncapped semantics of
        the standalone loops.
    width:
        Requests are uniform on ``[0, width]``; servers start evenly
        spaced across the segment.
    """

    def __init__(
        self,
        T: int = 200,
        dim: int = 3,
        D: float = 1.0,
        m: float | None = None,
        width: float = 10.0,
    ) -> None:
        if width <= 0.0:
            raise ValueError("width must be positive")
        super().__init__(T, dim=dim, D=D, m=(4.0 * width if m is None else m))
        self.width = width
        self.name = f"kserver-line[k={dim}]"

    @property
    def k(self) -> int:
        return self.dim

    def start_config(self) -> np.ndarray:
        """The sorted initial configuration: servers evenly spaced."""
        return np.linspace(0.0, self.width, self.k)

    def generate(self, rng: np.random.Generator) -> "object":
        xs = rng.uniform(0.0, self.width, size=self.T)
        points = np.broadcast_to(xs[:, None, None], (self.T, 1, self.k)).copy()
        return make_instance(
            points,
            start=self.start_config(),
            D=self.D,
            m=self.m,
            cost_model=CostModel.MOVEMENT_ONLY,
            name=f"{self.name}[T={self.T}]",
        )
