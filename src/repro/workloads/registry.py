"""Workload registry.

Maps stable string names to workload factories so a request source is
fully describable by ``name + JSON-able params`` — the property the
scenario layer (:mod:`repro.api`) builds on: a registered workload can be
embedded in a :class:`~repro.api.Scenario`, content-addressed through
:mod:`repro.core.store`, and reconstructed in a worker process.

Each entry carries capability metadata (:class:`WorkloadInfo`) mirroring
the algorithm registry's :class:`~repro.algorithms.registry.AlgorithmInfo`:
which dimensions the generator supports and whether it produces
moving-client instances.

The canonical comparison suite (historically ``standard_suite``) also
lives here as data: :data:`SUITE_NAMES` + :func:`suite_entry` give, for
every suite member, the registry name and parameter dict that reproduce
exactly the generators the suite has always used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from .bursty import BurstyWorkload
from .clustered import ClusteredWorkload
from .disaster import PatrolAgentWorkload
from .drift import DriftWorkload
from .kserver import KServerLineWorkload
from .random_walk import RandomWalkWorkload
from .vehicles import VehiclePlatoonWorkload

__all__ = [
    "SUITE_NAMES",
    "WORKLOADS",
    "WorkloadInfo",
    "available_workloads",
    "make_workload",
    "register_workload",
    "suite_entry",
    "workload_info",
]

#: Any callable producing a generator object with ``generate(rng)`` —
#: typically a :class:`~repro.workloads.base.WorkloadGenerator` subclass.
WorkloadFactory = Callable[..., Any]


def _make_splice(
    T: int = 400,
    dim: int = 2,
    D: float = 4.0,
    m: float = 1.0,
    first: str = "random-walk",
    second: str = "drift",
) -> Any:
    """Splice two registered workloads back to back (half the horizon each)."""
    from .mixtures import SpliceWorkload  # lazy: mixtures imports this module

    half = max(1, T // 2)
    return SpliceWorkload(
        make_workload(first, T=half, dim=dim, D=D, m=m),
        make_workload(second, T=max(1, T - half), dim=dim, D=D, m=m),
    )


@dataclass(frozen=True)
class WorkloadInfo:
    """One registry entry: factory plus capability metadata.

    Attributes
    ----------
    name, factory:
        Registry key and factory; the factory accepts ``T``/``dim``/``D``
        (and ``m`` or the moving-client speed pair) plus generator-specific
        keywords.
    supported_dims:
        Dimensions the generator can produce; ``None`` means any.
    moving_client:
        Whether ``generate`` returns
        :class:`~repro.core.instance.MovingClientInstance` objects.
    metrics:
        Metric spaces (registry names from :mod:`repro.core.metric`) the
        generated requests live in.  Euclidean generators default to the
        normed spaces; graph workloads declare ``("graph",)`` — their
        request points are ``(u, v, t)`` encodings, meaningless under ℓp.
    """

    name: str
    factory: WorkloadFactory
    supported_dims: tuple[int, ...] | None = None
    moving_client: bool = False
    metrics: tuple[str, ...] = ("euclidean", "l1", "linf")

    def supports_dim(self, dim: int) -> bool:
        return self.supported_dims is None or dim in self.supported_dims

    def supports_metric(self, metric: str) -> bool:
        return metric in self.metrics


WORKLOADS: Dict[str, WorkloadInfo] = {}


def register_workload(
    name: str,
    factory: WorkloadFactory,
    overwrite: bool = False,
    *,
    supported_dims: tuple[int, ...] | None = None,
    moving_client: bool = False,
    metrics: tuple[str, ...] = ("euclidean", "l1", "linf"),
) -> None:
    """Add a workload factory (plus capability limits) to the registry."""
    if name in WORKLOADS and not overwrite:
        raise KeyError(f"workload {name!r} already registered")
    WORKLOADS[name] = WorkloadInfo(
        name=name,
        factory=factory,
        supported_dims=tuple(supported_dims) if supported_dims is not None else None,
        moving_client=moving_client,
        metrics=tuple(metrics),
    )


register_workload("random-walk", RandomWalkWorkload)
register_workload("drift", DriftWorkload)
register_workload(
    "drift-rotating",
    lambda T=400, dim=2, D=1.0, m=1.0, rotate=0.03, **kw: DriftWorkload(
        T, dim=dim, D=D, m=m, rotate=rotate, **kw
    ),
    supported_dims=(2,),
)
register_workload("bursty", BurstyWorkload)
register_workload("clustered", ClusteredWorkload)
register_workload("vehicles", VehiclePlatoonWorkload)
register_workload("patrol-agent", PatrolAgentWorkload, moving_client=True)
register_workload("splice", _make_splice)
# k-server configuration-space instances: movement-only accounting, ℓ1
# movement = total server travel (see repro.algorithms.kserver_line).
register_workload("kserver-line", KServerLineWorkload, metrics=("l1",))

# Graph-space workloads: requests on weighted-network topologies, encoded
# as (u, v, t) metric points.  Lazy import avoids loading networkx (and the
# all-pairs tables) until a graph scenario actually asks for one.


def _make_graph_road(**kw: Any) -> Any:
    from .graphnet import GraphWorkload

    return GraphWorkload(topology="road", **kw)


def _make_graph_dc(**kw: Any) -> Any:
    from .graphnet import GraphWorkload

    return GraphWorkload(topology="dc", **kw)


register_workload("graph-road", _make_graph_road, supported_dims=(3,), metrics=("graph",))
register_workload("graph-dc", _make_graph_dc, supported_dims=(3,), metrics=("graph",))


def workload_info(name: str) -> WorkloadInfo:
    """Registry entry for one workload name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        ) from None


def make_workload(name: str, **params: Any) -> Any:
    """Instantiate a registered workload generator by name."""
    return workload_info(name).factory(**params)


def available_workloads() -> list[str]:
    """Sorted registry keys."""
    return sorted(WORKLOADS)


# -- the canonical comparison suite, as registry data ----------------------

#: Members of the standard comparison suite, in presentation order.
SUITE_NAMES: tuple[str, ...] = (
    "random-walk",
    "drift",
    "drift-rotating",
    "bursty",
    "clustered",
    "vehicles",
)

#: Suite parameter choices beyond ``T``/``dim``/``D``/``m`` (the values
#: ``standard_suite`` has always baked in).
_SUITE_PARAMS: Dict[str, Dict[str, Any]] = {
    "random-walk": {"sigma": 0.3, "spread": 0.5, "requests_per_step": 4},
    "drift": {"speed": 0.8, "spread": 0.2, "requests_per_step": 4},
    "drift-rotating": {"speed": 0.8, "rotate": 0.03, "spread": 0.2, "requests_per_step": 4},
    "bursty": {},
    "clustered": {},
    "vehicles": {},
}


def suite_entry(name: str, dim: int) -> tuple[str, Dict[str, Any]]:
    """``(registry name, extra params)`` of one suite member at ``dim``.

    ``drift-rotating`` requires two dimensions; elsewhere the suite has
    always substituted the straight drift, which this helper preserves.
    """
    if name not in _SUITE_PARAMS:
        raise KeyError(f"unknown suite workload {name!r}; available: {', '.join(SUITE_NAMES)}")
    if name == "drift-rotating" and dim != 2:
        return "drift", dict(_SUITE_PARAMS["drift"])
    return name, dict(_SUITE_PARAMS[name])
