"""Clustered multi-population workloads.

Several client clusters coexist, each contributing requests in proportion
to a slowly changing popularity; clusters themselves drift slowly.  This
is the "many devices near several aggregation points" picture from the
paper's edge-computing motivation: the right server position is near the
*weighted 1-median* of the clusters, which shifts as popularity shifts —
precisely what Move-to-Center tracks and what mean-based baselines
(GreedyCentroid) mis-estimate when cluster sizes are skewed.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from .base import WorkloadGenerator, make_instance

__all__ = ["ClusteredWorkload"]


class ClusteredWorkload(WorkloadGenerator):
    """Drifting clusters with evolving popularity.

    Parameters
    ----------
    n_clusters:
        Number of client clusters.
    cluster_sigma:
        Per-step drift sd of each cluster center.
    popularity_sigma:
        Per-step sd of the popularity logits (softmax-weighted sampling).
    requests_per_step:
        Total :math:`r` per step, multinomially split across clusters.
    spread:
        Scatter of requests around their cluster center.
    arena:
        Initial cluster centers drawn uniformly from ``[-arena, arena]^d``.
    """

    name = "clustered"

    def __init__(
        self,
        T: int,
        dim: int = 2,
        D: float = 8.0,
        m: float = 1.0,
        n_clusters: int = 4,
        cluster_sigma: float = 0.1,
        popularity_sigma: float = 0.1,
        requests_per_step: int = 8,
        spread: float = 0.4,
        arena: float = 10.0,
    ) -> None:
        super().__init__(T, dim, D, m)
        if n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if requests_per_step < 1:
            raise ValueError("requests_per_step must be positive")
        self.n_clusters = n_clusters
        self.cluster_sigma = cluster_sigma
        self.popularity_sigma = popularity_sigma
        self.r = requests_per_step
        self.spread = spread
        self.arena = arena

    def generate(self, rng: np.random.Generator) -> MSPInstance:
        centers = rng.uniform(-self.arena, self.arena, size=(self.n_clusters, self.dim))
        logits = np.zeros(self.n_clusters)
        pts = np.empty((self.T, self.r, self.dim))
        for t in range(self.T):
            centers += rng.normal(scale=self.cluster_sigma, size=centers.shape)
            logits += rng.normal(scale=self.popularity_sigma, size=logits.shape)
            w = np.exp(logits - logits.max())
            w /= w.sum()
            counts = rng.multinomial(self.r, w)
            row = []
            for c, k in enumerate(counts):
                if k:
                    row.append(centers[c] + rng.normal(scale=self.spread, size=(k, self.dim)))
            pts[t] = np.concatenate(row, axis=0)
        return make_instance(
            pts,
            start=np.zeros(self.dim),
            D=self.D,
            m=self.m,
            name=f"clustered[k={self.n_clusters},r={self.r}]",
        )
