"""Workload-generator scaffolding.

A workload generator produces :class:`~repro.core.instance.MSPInstance`
objects from a seeded :class:`numpy.random.Generator`.  Generators are
small dataclass-like objects with a ``generate(rng)`` method so experiment
configs can describe them declaratively and sweep their parameters.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.costs import CostModel
from ..core.instance import MSPInstance
from ..core.requests import RequestSequence

__all__ = ["WorkloadGenerator", "make_instance"]


def make_instance(
    points_per_step: np.ndarray | list[np.ndarray],
    start: np.ndarray,
    D: float,
    m: float,
    cost_model: CostModel = CostModel.MOVE_FIRST,
    name: str = "",
) -> MSPInstance:
    """Assemble an instance from raw per-step request arrays."""
    if isinstance(points_per_step, np.ndarray):
        seq = RequestSequence.from_packed(points_per_step)
    else:
        seq = RequestSequence(points_per_step, dim=int(np.asarray(start).shape[0]))
    return MSPInstance(seq, start=start, D=D, m=m, cost_model=cost_model, name=name)


class WorkloadGenerator(abc.ABC):
    """Base class for synthetic workload generators.

    Attributes
    ----------
    T:
        Number of time steps to generate.
    dim:
        Ambient dimension.
    D, m:
        Instance parameters baked into the generated instances.
    """

    name: str = "workload"

    def __init__(self, T: int, dim: int = 2, D: float = 1.0, m: float = 1.0) -> None:
        if T < 1:
            raise ValueError("T must be positive")
        if dim < 1:
            raise ValueError("dim must be positive")
        self.T = T
        self.dim = dim
        self.D = D
        self.m = m

    @abc.abstractmethod
    def generate(self, rng: np.random.Generator) -> MSPInstance:
        """Produce one instance draw."""

    def generate_many(self, seeds: list[int]) -> list[MSPInstance]:
        """One instance per seed (independent draws)."""
        return [self.generate(np.random.default_rng(s)) for s in seeds]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(T={self.T}, dim={self.dim}, D={self.D}, m={self.m})"
