"""Synthetic workload generators.

Includes the paper's two motivating scenarios (autonomous-vehicle platoons
and disaster-response agents) plus generic stochastic workloads used by the
comparison experiments.
"""

from .base import WorkloadGenerator, make_instance
from .bursty import BurstyWorkload
from .clustered import ClusteredWorkload
from .disaster import PatrolAgentWorkload, random_waypoint_path
from .drift import DriftWorkload
from .mixtures import SpliceWorkload, splice, standard_suite
from .random_walk import RandomWalkWorkload
from .registry import (
    SUITE_NAMES,
    WORKLOADS,
    WorkloadInfo,
    available_workloads,
    make_workload,
    register_workload,
    suite_entry,
    workload_info,
)
from .vehicles import VehiclePlatoonWorkload

__all__ = [
    "SUITE_NAMES",
    "WORKLOADS",
    "BurstyWorkload",
    "ClusteredWorkload",
    "DriftWorkload",
    "PatrolAgentWorkload",
    "RandomWalkWorkload",
    "SpliceWorkload",
    "VehiclePlatoonWorkload",
    "WorkloadGenerator",
    "WorkloadInfo",
    "available_workloads",
    "make_instance",
    "make_workload",
    "random_waypoint_path",
    "register_workload",
    "splice",
    "standard_suite",
    "suite_entry",
    "workload_info",
]
