"""Synthetic workload generators.

Includes the paper's two motivating scenarios (autonomous-vehicle platoons
and disaster-response agents) plus generic stochastic workloads used by the
comparison experiments.
"""

from .base import WorkloadGenerator, make_instance
from .bursty import BurstyWorkload
from .clustered import ClusteredWorkload
from .disaster import PatrolAgentWorkload, random_waypoint_path
from .drift import DriftWorkload
from .mixtures import SpliceWorkload, splice, standard_suite
from .random_walk import RandomWalkWorkload
from .vehicles import VehiclePlatoonWorkload

__all__ = [
    "BurstyWorkload",
    "ClusteredWorkload",
    "DriftWorkload",
    "PatrolAgentWorkload",
    "RandomWalkWorkload",
    "SpliceWorkload",
    "VehiclePlatoonWorkload",
    "WorkloadGenerator",
    "make_instance",
    "random_waypoint_path",
    "splice",
    "standard_suite",
]
