"""Composite workloads.

Utilities to splice workloads together — e.g. a benign random walk that
suddenly turns adversarial — and the standard suite used by the
baseline-comparison experiment (E13).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from .base import WorkloadGenerator

__all__ = ["splice", "SpliceWorkload", "standard_suite"]


def splice(first: MSPInstance, second: MSPInstance, name: str = "") -> MSPInstance:
    """Concatenate two instances (same dim/D/m/cost model).

    The second instance's start position is ignored — its requests simply
    continue the timeline.
    """
    if first.dim != second.dim:
        raise ValueError("dimension mismatch")
    if first.D != second.D or first.m != second.m or first.cost_model != second.cost_model:
        raise ValueError("instances must agree on D, m and cost model to splice")
    seq = first.requests.concat(second.requests)
    return MSPInstance(
        seq,
        start=first.start,
        D=first.D,
        m=first.m,
        cost_model=first.cost_model,
        name=name or f"splice({first.name}+{second.name})",
    )


class SpliceWorkload(WorkloadGenerator):
    """Generator that concatenates draws from two sub-generators."""

    name = "splice"

    def __init__(self, first: WorkloadGenerator, second: WorkloadGenerator) -> None:
        if first.dim != second.dim or first.D != second.D or first.m != second.m:
            raise ValueError("sub-generators must agree on dim, D and m")
        super().__init__(first.T + second.T, first.dim, first.D, first.m)
        self.first = first
        self.second = second

    def generate(self, rng: np.random.Generator) -> MSPInstance:
        a = self.first.generate(rng)
        b = self.second.generate(rng)
        return splice(a, b)


def standard_suite(T: int = 400, dim: int = 2, D: float = 4.0, m: float = 1.0) -> dict[str, WorkloadGenerator]:
    """The named workload suite used by the comparison experiments.

    Built through the workload registry (:func:`~repro.workloads.registry.suite_entry`),
    so the suite's members and parameters are the same data the scenario
    layer uses when it describes a suite cell by ``name + params``.
    """
    from .registry import SUITE_NAMES, make_workload, suite_entry

    suite = {}
    for name in SUITE_NAMES:
        registered, params = suite_entry(name, dim)
        suite[name] = make_workload(registered, T=T, dim=dim, D=D, m=m, **params)
    return suite
