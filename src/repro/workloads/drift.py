"""Drifting-hotspot workloads.

A demand point moves with *constant velocity* ``speed`` in a fixed (or
slowly rotating) direction — the workload underlying the lower-bound
constructions.  With ``speed`` close to ``m`` the offline server can track
the hotspot but an online server that falls behind pays for a long time;
this is the stress regime for un-augmented algorithms and the natural
habitat of experiments E1/E2.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from .base import WorkloadGenerator, make_instance

__all__ = ["DriftWorkload"]


class DriftWorkload(WorkloadGenerator):
    """Constant-velocity hotspot with optional direction rotation.

    Parameters
    ----------
    speed:
        Hotspot displacement per step (should be <= ``m`` for the offline
        server to track it; the generator does not enforce this so that
        super-speed drifts can be studied too).
    rotate:
        Radians of direction rotation per step (2-D only); 0 keeps a
        straight line.
    spread:
        Request scatter around the hotspot.
    requests_per_step:
        Fixed :math:`r`.
    """

    name = "drift"

    def __init__(
        self,
        T: int,
        dim: int = 2,
        D: float = 1.0,
        m: float = 1.0,
        speed: float = 0.9,
        rotate: float = 0.0,
        spread: float = 0.2,
        requests_per_step: int = 1,
    ) -> None:
        super().__init__(T, dim, D, m)
        if speed < 0:
            raise ValueError("speed must be non-negative")
        if rotate != 0.0 and dim != 2:
            raise ValueError("rotation requires dim == 2")
        self.speed = speed
        self.rotate = rotate
        self.spread = spread
        self.r = requests_per_step

    def generate(self, rng: np.random.Generator) -> MSPInstance:
        # Random initial direction.
        u = rng.normal(size=self.dim)
        u /= np.linalg.norm(u)
        pos = np.zeros(self.dim)
        demand = np.empty((self.T, self.dim))
        if self.dim == 2 and self.rotate != 0.0:
            c, s = np.cos(self.rotate), np.sin(self.rotate)
            rot = np.array([[c, -s], [s, c]])
        else:
            rot = None
        for t in range(self.T):
            pos = pos + self.speed * u
            demand[t] = pos
            if rot is not None:
                u = rot @ u
        scatter = rng.normal(scale=self.spread, size=(self.T, self.r, self.dim))
        pts = demand[:, None, :] + scatter
        return make_instance(
            pts,
            start=np.zeros(self.dim),
            D=self.D,
            m=self.m,
            name=f"drift[speed={self.speed:g},rot={self.rotate:g},r={self.r}]",
        )
