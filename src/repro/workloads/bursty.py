"""Bursty workloads.

Requests arrive in *bursts*: quiet stretches with zero or few requests,
then a burst of many requests at a freshly chosen location.  Bursts probe
the ``min{1, r/D}`` damping of MtC — during a burst :math:`r \\gg D` and
the algorithm sprints, between bursts it must resist drifting after noise.
The per-step request count varies, exercising the general
:math:`R_{min}/R_{max}` analysis of Section 4.3.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from .base import WorkloadGenerator, make_instance

__all__ = ["BurstyWorkload"]


class BurstyWorkload(WorkloadGenerator):
    """Quiet background traffic punctuated by located bursts.

    Parameters
    ----------
    burst_probability:
        Per-step probability of starting a burst.
    burst_length:
        Duration of a burst in steps.
    burst_requests:
        Requests per step during a burst.
    quiet_requests:
        Requests per step outside bursts (may be 0).
    arena:
        Burst locations are drawn uniformly from ``[-arena, arena]^d``.
    spread:
        Request scatter around the active location.
    """

    name = "bursty"

    def __init__(
        self,
        T: int,
        dim: int = 2,
        D: float = 4.0,
        m: float = 1.0,
        burst_probability: float = 0.05,
        burst_length: int = 10,
        burst_requests: int = 16,
        quiet_requests: int = 1,
        arena: float = 20.0,
        spread: float = 0.5,
    ) -> None:
        super().__init__(T, dim, D, m)
        if not (0.0 <= burst_probability <= 1.0):
            raise ValueError("burst_probability must lie in [0, 1]")
        if burst_length < 1 or burst_requests < 1 or quiet_requests < 0:
            raise ValueError("burst_length/burst_requests must be >= 1, quiet_requests >= 0")
        self.burst_probability = burst_probability
        self.burst_length = burst_length
        self.burst_requests = burst_requests
        self.quiet_requests = quiet_requests
        self.arena = arena
        self.spread = spread

    def generate(self, rng: np.random.Generator) -> MSPInstance:
        batches: list[np.ndarray] = []
        burst_remaining = 0
        burst_loc = np.zeros(self.dim)
        quiet_loc = np.zeros(self.dim)
        for _ in range(self.T):
            if burst_remaining == 0 and rng.random() < self.burst_probability:
                burst_remaining = self.burst_length
                burst_loc = rng.uniform(-self.arena, self.arena, size=self.dim)
            if burst_remaining > 0:
                n = self.burst_requests
                loc = burst_loc
                burst_remaining -= 1
            else:
                n = self.quiet_requests
                loc = quiet_loc
            if n == 0:
                batches.append(np.empty((0, self.dim)))
            else:
                batches.append(loc + rng.normal(scale=self.spread, size=(n, self.dim)))
        return make_instance(
            batches,
            start=np.zeros(self.dim),
            D=self.D,
            m=self.m,
            name=f"bursty[p={self.burst_probability:g},R={self.burst_requests}]",
        )
