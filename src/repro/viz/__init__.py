"""Terminal rendering of traces, workloads and ratio curves."""

from .ascii import render_line_chart, render_plane, sparkline

__all__ = ["render_line_chart", "render_plane", "sparkline"]
