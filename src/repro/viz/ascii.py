"""Terminal visualisation of traces and workloads.

matplotlib is not a dependency of this library, so the examples and the
CLI render directly to text:

* :func:`render_plane` — a character raster of a 2-D scene (server path,
  request cloud, optional reference path);
* :func:`render_line_chart` — a time/value chart for 1-D trajectories or
  ratio curves;
* :func:`sparkline` — a one-line unicode summary of a series (used inside
  tables).

These renderers are pure functions from arrays to strings so they are unit
testable like everything else.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_plane", "render_line_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 32) -> str:
    """One-line unicode sparkline of a series (resampled to ``width``)."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return ""
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(np.int64)
        values = values[idx]
    lo, hi = float(values.min()), float(values.max())
    if hi - lo <= 0:
        return _SPARK_LEVELS[0] * values.size
    levels = ((values - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)).astype(np.int64)
    return "".join(_SPARK_LEVELS[i] for i in levels)


def _raster(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def render_plane(
    server_path: np.ndarray,
    requests: np.ndarray | None = None,
    reference_path: np.ndarray | None = None,
    width: int = 72,
    height: int = 24,
    title: str = "",
) -> str:
    """Raster a 2-D scene.

    Glyphs: ``.`` request, ``*`` server path, ``o`` reference (e.g. OPT)
    path, ``S``/``E`` server start/end.  Later glyphs overwrite earlier
    ones, so the server path stays visible over dense request clouds.

    Parameters
    ----------
    server_path:
        ``(n, 2)`` polyline.
    requests:
        Optional ``(m, 2)`` request cloud.
    reference_path:
        Optional second polyline (rendered beneath the server's).
    """
    server_path = np.asarray(server_path, dtype=np.float64)
    if server_path.ndim != 2 or server_path.shape[1] != 2:
        raise ValueError("server_path must be (n, 2)")
    clouds = [server_path]
    if requests is not None and len(requests):
        clouds.append(np.asarray(requests, dtype=np.float64))
    if reference_path is not None and len(reference_path):
        clouds.append(np.asarray(reference_path, dtype=np.float64))
    allpts = np.concatenate(clouds, axis=0)
    lo = allpts.min(axis=0)
    hi = allpts.max(axis=0)
    span = np.maximum(hi - lo, 1e-9)

    def to_cell(p: np.ndarray) -> tuple[int, int]:
        x = int((p[0] - lo[0]) / span[0] * (width - 1))
        y = int((p[1] - lo[1]) / span[1] * (height - 1))
        return min(width - 1, max(0, x)), height - 1 - min(height - 1, max(0, y))

    grid = _raster(width, height)
    if requests is not None:
        for p in np.asarray(requests, dtype=np.float64):
            cx, cy = to_cell(p)
            grid[cy][cx] = "."
    if reference_path is not None:
        for p in np.asarray(reference_path, dtype=np.float64):
            cx, cy = to_cell(p)
            grid[cy][cx] = "o"
    for p in server_path:
        cx, cy = to_cell(p)
        grid[cy][cx] = "*"
    sx, sy = to_cell(server_path[0])
    ex, ey = to_cell(server_path[-1])
    grid[sy][sx] = "S"
    grid[ey][ex] = "E"

    border = "+" + "-" * width + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append(
        f"x:[{lo[0]:.3g}, {hi[0]:.3g}]  y:[{lo[1]:.3g}, {hi[1]:.3g}]  "
        "glyphs: S/E server start/end, * server, o reference, . requests"
    )
    return "\n".join(lines)


def render_line_chart(
    series: dict[str, np.ndarray],
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Plot one or more equally-spaced series as a character chart.

    Each series gets a distinct glyph (``*``, ``o``, ``+``, ``x``, ...);
    a legend and the value range are appended.
    """
    if not series:
        raise ValueError("need at least one series")
    glyphs = "*o+x#@%&"
    arrays = {k: np.asarray(v, dtype=np.float64).ravel() for k, v in series.items()}
    if any(a.size == 0 for a in arrays.values()):
        raise ValueError("series must be non-empty")
    lo = min(float(a.min()) for a in arrays.values())
    hi = max(float(a.max()) for a in arrays.values())
    span = max(hi - lo, 1e-9)

    grid = _raster(width, height)
    for gi, (name, a) in enumerate(arrays.items()):
        glyph = glyphs[gi % len(glyphs)]
        xs = np.linspace(0, width - 1, a.size).astype(np.int64) if a.size > 1 else [0]
        for x, v in zip(xs, a):
            y = height - 1 - int((v - lo) / span * (height - 1))
            grid[y][int(x)] = glyph

    border = "+" + "-" * width + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(arrays))
    lines.append(f"range [{lo:.4g}, {hi:.4g}]   {legend}")
    return "\n".join(lines)
