"""Streaming serve subsystem: the batched engine as a long-lived service.

Everything else in this repository is offline — build the instance, run
``T`` steps, reduce.  This package inverts that: requests arrive one step
at a time, per tenant/client, and the engine advances *incrementally*
while a server process stays up.

Layers
------

:class:`OnlineSession` (``session.py``)
    One engine lane: feed request steps, read positions and costs so
    far, slice the finished run back into a :class:`~repro.core.trace.Trace`.

:class:`SessionPool` (``pool.py``)
    The tick loop.  Live sessions sharing ``(algorithm, params, dim,
    cost_model)`` are packed into one wide cross-lane
    :func:`~repro.core.engine.advance_lanes` call per tick — the same
    per-step arithmetic as :func:`~repro.core.engine.simulate_batch`, so
    a streamed lane is bit-identical to a batch run of the composed
    instance (the licensing the mega-batcher already proved per lane).

``checkpoint.py``
    Periodic session checkpoints through the content-addressed
    :class:`~repro.core.store.ResultsStore` (atomic tmp+rename): the
    request history is the checkpoint, resume replays it through the
    engine, so a SIGKILL'd server completes traces bit-identically to an
    uninterrupted run.

:class:`ServeServer` (``server.py``)
    The asyncio ingestion front end behind ``mobile-server serve`` —
    stdin/JSONL or a TCP line protocol: open sessions, feed steps, query
    state, read traces, close.

``parity.py``
    The streamed-vs-batch bridges: batch references for a session and
    scenario streaming, so a finished streamed session is checked
    against :func:`repro.api.run` at equal digests.
"""

from .checkpoint import (
    delete_session_checkpoint,
    final_result_digest,
    load_manifest,
    load_session_checkpoint,
    manifest_digest,
    save_final_result,
    save_manifest,
    save_session_checkpoint,
    session_checkpoint_digest,
)
from .parity import batch_reference, session_specs_for, stream_scenario, trace_json
from .pool import SessionPool, poolable
from .server import ServeServer
from .session import OnlineSession, SessionSpec, request_stream_digest

__all__ = [
    "OnlineSession",
    "ServeServer",
    "SessionPool",
    "SessionSpec",
    "batch_reference",
    "delete_session_checkpoint",
    "final_result_digest",
    "load_manifest",
    "load_session_checkpoint",
    "manifest_digest",
    "poolable",
    "request_stream_digest",
    "save_final_result",
    "save_manifest",
    "save_session_checkpoint",
    "session_checkpoint_digest",
    "session_specs_for",
    "stream_scenario",
    "trace_json",
]
