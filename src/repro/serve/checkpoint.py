"""Durable serve-session checkpoints in the content-addressed store.

A serve checkpoint is deliberately *not* a pickle of live state: the
algorithms carry in-process handles (RNG streams, scalar algorithm
objects) that cannot be serialized portably.  Instead a checkpoint stores
the session's durable identity — its :class:`~repro.serve.session.SessionSpec`
plus the exact request history committed so far — and resume *replays*
that history through the incremental engine.  Replay is deterministic
(the whole repo's bit-parity contract), so a resumed session reaches the
same position, costs and carried state an uninterrupted run would hold,
and the completed trace is bit-identical.

Addressing
----------

Live checkpoints are **mutable slots**: the digest is a function of
``(server_id, session_id)`` only, so each periodic save atomically
replaces the previous one (tmp+rename via :meth:`ResultsStore.save`).
A per-server manifest slot lists the open sessions so ``--resume`` knows
what to restore.  The digests hash only those identifiers — never
payload contents, and never wall-clock time (CLK001-linted) — which is
what makes the slot stable across saves.  Checkpoints are pinned in the
store for the lifetime of the owning process so a concurrent
:meth:`ResultsStore.gc` can never evict an in-flight session.

Finished sessions graduate to an ordinary *content-addressed* result:
:func:`final_result_digest` hashes the spec plus the stream digest, so
any server (or an inline batch run) completing the same stream writes
the same entry.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.store import MISSING, ResultsStore, digest_key
from .session import OnlineSession, SessionSpec, request_stream_digest

__all__ = [
    "delete_session_checkpoint",
    "final_result_digest",
    "load_manifest",
    "load_session_checkpoint",
    "manifest_digest",
    "save_final_result",
    "save_manifest",
    "save_session_checkpoint",
    "session_checkpoint_digest",
]

_CHECKPOINT_FN = "repro.serve.checkpoint:session"
_MANIFEST_FN = "repro.serve.checkpoint:manifest"
_FINAL_FN = "repro.serve.checkpoint:final"


def session_checkpoint_digest(server_id: str, session_id: str) -> str:
    """Mutable-slot address of one session's live checkpoint."""
    return digest_key(_CHECKPOINT_FN, {"server": str(server_id),
                                       "session": str(session_id)})


def manifest_digest(server_id: str) -> str:
    """Mutable-slot address of a server's open-session manifest."""
    return digest_key(_MANIFEST_FN, {"server": str(server_id)})


def final_result_digest(spec: SessionSpec, stream_digest: str) -> str:
    """Content address of a *finished* session's result payload."""
    return digest_key(_FINAL_FN, {"spec": spec.to_dict(),
                                  "stream": stream_digest})


def save_session_checkpoint(
    store: ResultsStore, server_id: str, session: OnlineSession
) -> str:
    """Atomically persist a session's durable identity; returns the digest.

    The entry is pinned before the write so an interleaved ``gc`` pass in
    this process can never evict a checkpoint the server still owns.
    """
    digest = session_checkpoint_digest(server_id, session.session_id)
    counts = np.asarray([p.shape[0] for p in session.history], dtype=np.int64)
    if session.history:
        points = np.ascontiguousarray(
            np.concatenate(session.history, axis=0), dtype=np.float64
        )
    else:
        points = np.empty((0, session.spec.dim), dtype=np.float64)
    store.pin(digest)
    store.save(digest, {
        "kind": "serve-session-checkpoint",
        "server": str(server_id),
        "session": session.session_id,
        "spec": session.spec.to_dict(),
        "steps": int(session.steps),
        "counts": counts,
        "points": points,
        "stream_digest": session.stream_digest(),
    })
    return digest


def load_session_checkpoint(
    store: ResultsStore, server_id: str, session_id: str
) -> tuple[SessionSpec, list[np.ndarray]] | None:
    """Read one session checkpoint back as ``(spec, request history)``.

    Returns ``None`` when no checkpoint exists.  The stored stream digest
    is re-verified against the reassembled history, so a torn or
    tampered entry fails loudly instead of resuming a corrupted trace.
    """
    payload = store.load_or_none(
        session_checkpoint_digest(server_id, session_id), default=MISSING
    )
    if payload is MISSING:
        return None
    if not isinstance(payload, Mapping) or payload.get("kind") != "serve-session-checkpoint":
        raise ValueError(
            f"entry for session {session_id!r} is not a serve checkpoint"
        )
    spec = SessionSpec.from_dict(payload["spec"])
    counts = np.asarray(payload["counts"], dtype=np.int64)
    points = np.asarray(payload["points"], dtype=np.float64)
    if int(counts.sum()) != points.shape[0]:
        raise ValueError(
            f"checkpoint for session {session_id!r} is inconsistent: "
            f"counts sum to {int(counts.sum())} but {points.shape[0]} points stored"
        )
    history: list[np.ndarray] = []
    offset = 0
    for c in counts:
        history.append(points[offset:offset + int(c)])
        offset += int(c)
    digest = request_stream_digest(history, spec.dim)
    if digest != payload.get("stream_digest"):
        raise ValueError(
            f"checkpoint for session {session_id!r} failed its stream-digest check"
        )
    return spec, history


def delete_session_checkpoint(
    store: ResultsStore, server_id: str, session_id: str
) -> bool:
    """Unpin and drop a session's live checkpoint (after close/graduation)."""
    digest = session_checkpoint_digest(server_id, session_id)
    store.unpin(digest)
    return store.delete(digest)


def save_manifest(store: ResultsStore, server_id: str, session_ids) -> str:
    """Persist the set of open sessions; pinned like the checkpoints."""
    digest = manifest_digest(server_id)
    store.pin(digest)
    store.save(digest, {
        "kind": "serve-manifest",
        "server": str(server_id),
        "sessions": sorted(str(s) for s in session_ids),
    })
    return digest


def load_manifest(store: ResultsStore, server_id: str) -> list[str]:
    """Open sessions recorded by the last :func:`save_manifest` (or ``[]``)."""
    payload = store.load_or_none(manifest_digest(server_id), default=MISSING)
    if payload is MISSING:
        return []
    if not isinstance(payload, Mapping) or payload.get("kind") != "serve-manifest":
        raise ValueError(f"entry for server {server_id!r} is not a serve manifest")
    return [str(s) for s in payload.get("sessions", [])]


def save_final_result(store: ResultsStore, session: OnlineSession) -> str:
    """Graduate a finished session to a content-addressed result entry."""
    digest = final_result_digest(session.spec, session.stream_digest())
    store.save(digest, session.final_payload())
    return digest
