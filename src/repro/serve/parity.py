"""Streamed ↔ batch parity bridges.

The serve subsystem's correctness claim is *bit-identity*: a trace
streamed request-by-request through :class:`~repro.serve.OnlineSession`
equals a :func:`~repro.core.engine.simulate_batch` run of the composed
instance, float for float.  This module holds the pieces that state and
check that claim:

* :func:`batch_reference` — the batch-engine trace a finished (or
  partial) session must match;
* :func:`session_specs_for` / :func:`stream_scenario` — lower a
  declarative :class:`~repro.api.scenario.Scenario` to session specs and
  play its lanes through a :class:`~repro.serve.SessionPool`, so streamed
  results are checkable against :func:`repro.api.run` (same per-lane
  costs, same scenario digest addressing the inline result);
* :func:`trace_json` — a canonical text rendering of a trace.  JSON
  ``repr`` round-trips Python floats exactly, so two bit-identical
  traces render to byte-identical text — unlike ``.npz`` archives, whose
  zip metadata embeds timestamps.  The CI smoke job byte-diffs these.
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from ..core.trace import Trace
from .pool import SessionPool
from .session import OnlineSession, SessionSpec

__all__ = [
    "batch_reference",
    "session_specs_for",
    "stream_scenario",
    "trace_json",
]


def batch_reference(
    spec: SessionSpec,
    history: Sequence[np.ndarray],
    *,
    fuse: bool | None = None,
) -> Trace:
    """The batch-engine trace for a session's spec and request history.

    Resolves the algorithm exactly as :func:`repro.api.run` does — the
    registry name when the spec carries no parameters (so truly
    vectorized implementations and their fused kernels engage), a scalar
    factory otherwise.
    """
    from ..algorithms.registry import make_algorithm
    from ..core.engine import simulate_batch

    if spec.algorithm_params:
        kwargs = spec.algorithm_kwargs()
        algorithm = lambda: make_algorithm(spec.algorithm, **kwargs)  # noqa: E731
    else:
        algorithm = spec.algorithm
    batch = simulate_batch(
        [spec.instance(history)], algorithm, delta=spec.delta, fuse=fuse
    )
    return batch.trace(0)


def session_specs_for(scenario) -> list[tuple[SessionSpec, list[np.ndarray]]]:
    """Lower a scenario's per-seed instances to ``(spec, history)`` pairs.

    The spec reproduces each materialised instance's geometry and the
    scenario's algorithm selection, so streaming the returned history
    through a session plays the exact run :func:`repro.api.run` would.
    """
    from ..api.runtime import build_instances

    instances, _ = build_instances(scenario)
    lowered = []
    for inst in instances:
        spec = SessionSpec(
            algorithm=scenario.algorithm,
            dim=inst.dim,
            start=tuple(float(x) for x in inst.start),
            D=float(inst.D),
            m=float(inst.m),
            cost_model=inst.cost_model.value,
            delta=float(scenario.delta),
            algorithm_params=scenario.algorithm_params,
        )
        lowered.append((spec, [batch.points for batch in inst.requests]))
    return lowered


def stream_scenario(scenario, *, fuse: bool | None = None) -> list[OnlineSession]:
    """Play every lane of a scenario through a serve pool, step by step.

    All lanes are fed in lock-step (one request step per tick across the
    whole pool), exercising the cross-lane wave packing.  Returns the
    sessions after their streams are drained; compare their traces and
    totals against the scenario's :func:`repro.api.run` result.
    """
    pool = SessionPool(fuse=fuse)
    lowered = session_specs_for(scenario)
    sessions = [pool.open(spec, f"lane{i}") for i, (spec, _) in enumerate(lowered)]
    T = max((len(history) for _, history in lowered), default=0)
    for t in range(T):
        for session, (_, history) in zip(sessions, lowered):
            if t < len(history):
                session.feed(history[t])
        pool.tick()
    pool.drain()
    return sessions


def trace_json(trace: Trace) -> str:
    """Canonical JSON text of a trace; bit-identical traces ⇒ equal bytes."""
    return json.dumps(
        {
            "algorithm": trace.algorithm,
            "positions": trace.positions.tolist(),
            "movement_costs": trace.movement_costs.tolist(),
            "service_costs": trace.service_costs.tolist(),
            "distances_moved": trace.distances_moved.tolist(),
            "request_counts": trace.request_counts.tolist(),
            "total_cost": trace.total_cost,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
