"""One engine lane as a long-lived, incrementally-fed session.

A :class:`SessionSpec` is the wire-format description of a lane — enough
to rebuild the exact :class:`~repro.core.instance.MSPInstance` the batch
engine would run, which is what makes streamed results checkable against
:func:`repro.api.run` after the fact.  An :class:`OnlineSession` then
carries the live lane: the request steps fed so far, the current server
position, per-step cost records bit-identical to a
:class:`~repro.core.engine.BatchTrace` row, and the opaque carried
decision state exported by the algorithm between ticks.

Sessions never advance themselves — :class:`~repro.serve.pool.SessionPool`
packs pending steps of compatible sessions into wide
:func:`~repro.core.engine.advance_lanes` calls and commits the results
back here.  That split keeps this module free of algorithm imports and
makes a session trivially serializable: its durable identity is
``(spec, request history)``; everything else is deterministic replay.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..core.costs import CostModel
from ..core.metric import as_points
from ..core.instance import MSPInstance
from ..core.requests import RequestSequence
from ..core.trace import Trace

__all__ = ["OnlineSession", "SessionSpec", "request_stream_digest"]


def request_stream_digest(batches: Iterable[np.ndarray], dim: int) -> str:
    """SHA-256 over a request stream's exact float64 contents.

    Two streams digest equally iff they have the same per-step counts and
    bit-identical coordinates — the identity used to assert that a resumed
    session completed the *same* trace an uninterrupted run would have.
    """
    h = hashlib.sha256()
    h.update(f"dim={int(dim)}".encode())
    for pts in batches:
        arr = np.ascontiguousarray(np.asarray(pts, dtype=np.float64))
        h.update(f"|{arr.shape[0]}".encode())
        h.update(arr.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class SessionSpec:
    """Durable description of one serve lane.

    Attributes mirror :class:`~repro.core.instance.MSPInstance` plus the
    online knobs: ``delta`` (resource augmentation) and the algorithm
    selection.  ``algorithm_params`` is a sorted tuple of ``(name, value)``
    pairs so specs hash, compare and JSON-round-trip deterministically.
    """

    algorithm: str
    dim: int
    start: tuple
    D: float = 1.0
    m: float = 1.0
    cost_model: str = "move-first"
    delta: float = 0.0
    algorithm_params: tuple = ()
    metric: str = "euclidean"

    def __post_init__(self) -> None:
        from ..core.metric import METRICS

        if self.metric not in METRICS:
            raise ValueError(
                f"metric must be one of {tuple(sorted(METRICS))}, got {self.metric!r}")
        if int(self.dim) <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        object.__setattr__(self, "dim", int(self.dim))
        start = tuple(float(x) for x in self.start)
        if len(start) != self.dim:
            raise ValueError(
                f"start has dimension {len(start)}, spec says dim={self.dim}"
            )
        object.__setattr__(self, "start", start)
        CostModel(self.cost_model)  # raises on unknown value
        if float(self.delta) < 0.0:
            raise ValueError(f"delta must be non-negative, got {self.delta}")
        params = self.algorithm_params
        if isinstance(params, Mapping):
            params = params.items()
        object.__setattr__(
            self,
            "algorithm_params",
            tuple(sorted((str(k), v) for k, v in params)),
        )

    # -- derived views ---------------------------------------------------

    @property
    def cost_model_enum(self) -> CostModel:
        return CostModel(self.cost_model)

    @property
    def group_key(self) -> tuple:
        """Sessions sharing this key may ride one cross-lane engine wave."""
        return (self.algorithm, self.algorithm_params, self.dim, self.cost_model,
                self.metric)

    def algorithm_kwargs(self) -> dict:
        return dict(self.algorithm_params)

    def proto_instance(self) -> MSPInstance:
        """A zero-step instance carrying this spec's ``D``/``m``/cost model.

        ``reset_batch`` reads per-lane parameters off instances; the serve
        layer hands it these protos so a streamed lane binds exactly like
        a batch lane would.
        """
        return MSPInstance(
            requests=RequestSequence([], dim=self.dim),
            start=np.array(self.start, dtype=np.float64),
            D=self.D,
            m=self.m,
            cost_model=self.cost_model_enum,
        )

    def instance(self, history: Sequence[np.ndarray]) -> MSPInstance:
        """The batch-engine instance over an explicit request history."""
        return MSPInstance(
            requests=RequestSequence(list(history), dim=self.dim),
            start=np.array(self.start, dtype=np.float64),
            D=self.D,
            m=self.m,
            cost_model=self.cost_model_enum,
        )

    @property
    def cap(self) -> float:
        """Online movement cap :math:`(1+\\delta) m` — the engine's formula."""
        return self.proto_instance().online_cap(float(self.delta))

    # -- wire format -----------------------------------------------------

    def to_dict(self) -> dict:
        # metric is omitted at its default so pre-metric spec payloads
        # (and their hashes) are reproduced byte-for-byte.
        payload = {
            "algorithm": self.algorithm,
            "dim": self.dim,
            "start": list(self.start),
            "D": self.D,
            "m": self.m,
            "cost_model": self.cost_model,
            "delta": self.delta,
            "algorithm_params": {k: v for k, v in self.algorithm_params},
        }
        if self.metric != "euclidean":
            payload["metric"] = self.metric
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionSpec":
        known = {
            "algorithm", "dim", "start", "D", "m",
            "cost_model", "delta", "algorithm_params", "metric",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SessionSpec fields: {sorted(unknown)}")
        if "algorithm" not in data or "dim" not in data or "start" not in data:
            raise ValueError("SessionSpec needs at least algorithm, dim and start")
        return cls(
            algorithm=str(data["algorithm"]),
            dim=int(data["dim"]),
            start=tuple(data["start"]),
            D=float(data.get("D", 1.0)),
            m=float(data.get("m", 1.0)),
            cost_model=str(data.get("cost_model", "move-first")),
            delta=float(data.get("delta", 0.0)),
            algorithm_params=tuple(sorted(dict(data.get("algorithm_params", {})).items())),
            metric=str(data.get("metric", "euclidean")),
        )


class OnlineSession:
    """The live state of one streamed lane.

    ``feed`` enqueues request steps; the pool drains the queue through the
    engine and calls :meth:`commit_step` with the lane's row of each wave.
    All committed records reproduce a batch run of :meth:`instance`
    bit-for-bit — per-step costs, positions, carried decision state.
    """

    def __init__(self, spec: SessionSpec, session_id: str) -> None:
        self.spec = spec
        self.session_id = str(session_id)
        self.proto_instance = spec.proto_instance()
        self.position = np.array(spec.start, dtype=np.float64)
        self.steps = 0
        self.history: list[np.ndarray] = []
        self.pending: deque[np.ndarray] = deque()
        #: Opaque per-lane decision state (``export_lane_states`` entry);
        #: ``None`` until the first committed step.  In-process only.
        self.lane_state: Any = None
        self.closed = False
        #: Trace label; the pool stamps the bound algorithm's ``name``.
        self.algorithm_label = spec.algorithm
        self._positions: list[np.ndarray] = []
        self._movement: list[float] = []
        self._service: list[float] = []
        self._distance: list[float] = []

    # -- ingestion -------------------------------------------------------

    @property
    def next_index(self) -> int:
        """Index of the step the next fed batch will occupy."""
        return self.steps + len(self.pending)

    def feed(self, points: Any, at: int | None = None) -> bool:
        """Enqueue the requests of one step; returns whether it was new.

        ``at`` is the client's step index for the batch.  Re-feeding an
        index the session has already seen is a no-op returning ``False``
        — that idempotency is what lets a client blindly replay its stream
        after a server crash, regardless of where the checkpoint landed.
        Feeding beyond :attr:`next_index` (a gap) is an error.
        """
        if self.closed:
            raise RuntimeError(f"session {self.session_id!r} is closed")
        pts = as_points(points, dim=self.spec.dim) if points is not None \
            else np.empty((0, self.spec.dim))
        if at is None:
            at = self.next_index
        at = int(at)
        if at < self.next_index:
            return False
        if at > self.next_index:
            raise ValueError(
                f"session {self.session_id!r}: feed at step {at} leaves a gap "
                f"(next expected step is {self.next_index})"
            )
        self.pending.append(pts)
        return True

    def feed_steps(self, steps: Iterable[Any], at: int | None = None) -> int:
        """Enqueue several consecutive steps; returns how many were new."""
        applied = 0
        index = at
        for points in steps:
            if self.feed(points, at=index):
                applied += 1
            if index is not None:
                index += 1
        return applied

    # -- engine commit (called by the pool) ------------------------------

    def commit_step(
        self,
        position: np.ndarray,
        movement: float,
        service: float,
        distance: float,
        lane_state: Any,
    ) -> None:
        """Record one validated engine step for this lane."""
        points = self.pending.popleft()
        self.history.append(points)
        self.position = position
        self._positions.append(position)
        self._movement.append(float(movement))
        self._service.append(float(service))
        self._distance.append(float(distance))
        self.lane_state = lane_state
        self.steps += 1

    # -- read-side views -------------------------------------------------

    @property
    def movement_cost(self) -> float:
        return float(np.asarray(self._movement, dtype=np.float64).sum())

    @property
    def service_cost(self) -> float:
        return float(np.asarray(self._service, dtype=np.float64).sum())

    @property
    def total_cost(self) -> float:
        return self.movement_cost + self.service_cost

    def state(self) -> dict:
        """JSON-able snapshot of the lane (the ``state`` protocol reply)."""
        return {
            "session": self.session_id,
            "algorithm": self.spec.algorithm,
            "steps": self.steps,
            "pending": len(self.pending),
            "closed": self.closed,
            "position": [float(x) for x in self.position],
            "movement_cost": self.movement_cost,
            "service_cost": self.service_cost,
            "total_cost": self.total_cost,
        }

    def trace(self) -> Trace:
        """Committed steps as an ordinary :class:`~repro.core.trace.Trace`.

        Bit-identical to ``simulate_batch([self.instance()], ...).trace(0)``
        — the parity suite holds the serve layer to exactly that.
        """
        T = self.steps
        positions = np.empty((T + 1, self.spec.dim), dtype=np.float64)
        positions[0] = np.array(self.spec.start, dtype=np.float64)
        for t, pos in enumerate(self._positions):
            positions[t + 1] = pos
        return Trace(
            positions=positions,
            movement_costs=np.asarray(self._movement, dtype=np.float64),
            service_costs=np.asarray(self._service, dtype=np.float64),
            distances_moved=np.asarray(self._distance, dtype=np.float64),
            request_counts=np.asarray(
                [p.shape[0] for p in self.history], dtype=np.int64
            ),
            algorithm=self.algorithm_label,
        )

    def instance(self) -> MSPInstance:
        """The batch-engine instance equivalent to the steps committed so far."""
        return self.spec.instance(self.history)

    def stream_digest(self) -> str:
        """Digest of the committed request stream (see :func:`request_stream_digest`)."""
        return request_stream_digest(self.history, self.spec.dim)

    def final_payload(self) -> dict:
        """The content-addressed result payload saved when a session closes."""
        trace = self.trace()
        return {
            "session": self.session_id,
            "spec": self.spec.to_dict(),
            "steps": self.steps,
            "stream_digest": self.stream_digest(),
            "algorithm": self.algorithm_label,
            "positions": trace.positions,
            "movement_costs": trace.movement_costs,
            "service_costs": trace.service_costs,
            "distances_moved": trace.distances_moved,
            "request_counts": trace.request_counts,
            "movement_cost": self.movement_cost,
            "service_cost": self.service_cost,
            "total_cost": self.total_cost,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineSession({self.session_id!r}, alg={self.spec.algorithm!r}, "
            f"steps={self.steps}, pending={len(self.pending)})"
        )
