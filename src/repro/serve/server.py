"""The long-lived ingestion front end behind ``mobile-server serve``.

A newline-delimited JSON protocol over stdin/stdout (default) or a TCP
socket (``--port``; port ``0`` picks an ephemeral one, announced on the
first stdout line).  Each request line is one JSON object with an
``op``; each reply is one JSON object with ``ok``.

Operations
----------

``{"op": "open", "session": id?, "spec": {...}}``
    Open a session (spec fields: ``algorithm``, ``dim``, ``start``, and
    optionally ``D``, ``m``, ``cost_model``, ``delta``,
    ``algorithm_params``).  Idempotent: re-opening an existing session
    with an equal spec reports its current step count — which is how a
    client blindly replays its script after a server crash.

``{"op": "feed", "session": id, "points": [[..], ..], "at": t?}``
    Feed the requests of one step (``points`` may be ``[]``) and advance
    the engine.  ``steps: [[[..],..], ..]`` feeds several consecutive
    steps at once.  ``at`` is the client-side step index: steps the
    session already committed are acknowledged as duplicates instead of
    re-applied, so replay after resume is exact regardless of where the
    last checkpoint landed.

``{"op": "feed-many", "feeds": [{"session": .., "points": ..}, ..]}``
    Batch ingestion: enqueue every feed, then drain once — sessions
    sharing an algorithm group advance in wide cross-lane waves (the
    serve benchmark's fast path).

``{"op": "state" | "trace" | "close", "session": id}``
    Query a lane's position/costs, read its full per-step trace
    (canonical JSON arrays — byte-diffable against a batch run), or
    close it: the final payload graduates to a content-addressed store
    entry and the live checkpoint slot is dropped.

``{"op": "shutdown"}``
    Checkpoint every open session plus the manifest and exit cleanly.

Crash safety: sessions are checkpointed on open, every
``checkpoint_every`` committed steps, and at shutdown — through the
store's atomic tmp+rename writes, pinned against gc while the server
lives.  After a SIGKILL, ``--resume`` reloads the manifest and replays
each checkpointed history through the engine, which restores positions,
costs *and* carried algorithm state bit-exactly (determinism), so the
completed trace equals an uninterrupted run's byte for byte.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Mapping

from ..core.store import ResultsStore
from .checkpoint import (
    delete_session_checkpoint,
    save_final_result,
    save_manifest,
    save_session_checkpoint,
    load_manifest,
    load_session_checkpoint,
)
from .parity import trace_json
from .pool import SessionPool
from .session import SessionSpec

__all__ = ["ServeServer"]


class ServeServer:
    """Protocol handler plus checkpoint cadence around a :class:`SessionPool`.

    The engine work is synchronous and CPU-bound; asyncio only multiplexes
    ingestion (stdin or sockets), so one server process is one engine.
    """

    def __init__(
        self,
        store_root,
        *,
        server_id: str = "serve",
        checkpoint_every: int = 16,
        fuse: bool | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.store = ResultsStore(store_root)
        self.server_id = str(server_id)
        self.checkpoint_every = int(checkpoint_every)
        self.pool = SessionPool(fuse=fuse)
        self._checkpointed_steps: dict[str, int] = {}
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    def resume(self) -> list[str]:
        """Restore every manifest session by replaying its checkpoint.

        Returns the restored session ids.  Sessions whose checkpoint slot
        is missing (killed before the first save could land) are skipped
        — the client's replayed ``open`` recreates them.
        """
        restored = []
        for session_id in load_manifest(self.store, self.server_id):
            loaded = load_session_checkpoint(self.store, self.server_id, session_id)
            if loaded is None:
                continue
            spec, history = loaded
            session = self.pool.open(spec, session_id)
            session.feed_steps(history, at=0)
            restored.append(session_id)
        # Deterministic replay: the engine re-derives positions, costs
        # and carried algorithm state from the request history.
        self.pool.drain()
        for session_id in restored:
            self._checkpoint(session_id)
        self._save_manifest()
        return restored

    def _checkpoint(self, session_id: str) -> None:
        session = self.pool.get(session_id)
        save_session_checkpoint(self.store, self.server_id, session)
        self._checkpointed_steps[session_id] = session.steps

    def _save_manifest(self) -> None:
        save_manifest(self.store, self.server_id, self.pool.sessions.keys())

    def _checkpoint_due(self) -> None:
        for session_id, session in self.pool.sessions.items():
            last = self._checkpointed_steps.get(session_id, 0)
            if session.steps - last >= self.checkpoint_every:
                self._checkpoint(session_id)

    def checkpoint_all(self) -> None:
        """Force-checkpoint every open session plus the manifest."""
        for session_id in list(self.pool.sessions):
            self._checkpoint(session_id)
        self._save_manifest()

    # -- request handling ------------------------------------------------

    def handle(self, request: Mapping[str, Any]) -> dict:
        """Dispatch one decoded protocol request; never raises."""
        try:
            op = request.get("op")
            if op == "open":
                return self._op_open(request)
            if op == "feed":
                return self._op_feed(request)
            if op == "feed-many":
                return self._op_feed_many(request)
            if op == "state":
                return {"ok": True, **self.pool.get(self._sid(request)).state()}
            if op == "trace":
                session = self.pool.get(self._sid(request))
                return {"ok": True, "session": session.session_id,
                        "trace": json.loads(trace_json(session.trace()))}
            if op == "close":
                return self._op_close(request)
            if op == "shutdown":
                self.checkpoint_all()
                self._stopping = True
                return {"ok": True, "shutdown": True}
            if op == "ping":
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # protocol surface: errors become replies
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def handle_line(self, line: str | bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        return self.handle(request)

    @staticmethod
    def _sid(request: Mapping[str, Any]) -> str:
        session_id = request.get("session")
        if session_id is None:
            raise ValueError("request needs a 'session' field")
        return str(session_id)

    def _op_open(self, request: Mapping[str, Any]) -> dict:
        spec = SessionSpec.from_dict(request.get("spec") or {})
        session_id = request.get("session")
        if session_id is not None and str(session_id) in self.pool.sessions:
            existing = self.pool.get(str(session_id))
            if existing.spec != spec:
                return {"ok": False, "error":
                        f"session {session_id!r} is open with a different spec"}
            return {"ok": True, "session": existing.session_id,
                    "steps": existing.steps, "existing": True}
        session = self.pool.open(spec, session_id)
        self._checkpoint(session.session_id)
        self._save_manifest()
        return {"ok": True, "session": session.session_id,
                "steps": session.steps, "existing": False}

    @staticmethod
    def _enqueue(session, request: Mapping[str, Any]) -> int:
        at = request.get("at")
        if "steps" in request:
            return session.feed_steps(request["steps"], at=at)
        return int(session.feed(request.get("points"), at=at))

    def _drain_or_rollback(self, fed: list) -> None:
        """Drain the pool; on engine failure, unqueue what this call fed.

        No wave commits partially (the engine validates before any
        commit), so popping the just-fed tail restores the pre-call
        queues and the error reply leaves the server consistent.
        """
        try:
            self.pool.drain()
        except Exception:
            for session, enqueued in fed:
                for _ in range(min(enqueued, len(session.pending))):
                    session.pending.pop()
            raise

    def _op_feed(self, request: Mapping[str, Any]) -> dict:
        session = self.pool.get(self._sid(request))
        enqueued = self._enqueue(session, request)
        self._drain_or_rollback([(session, enqueued)])
        self._checkpoint_due()
        return {"ok": True, "session": session.session_id,
                "applied": enqueued, "steps": session.steps,
                "total_cost": session.total_cost}

    def _op_feed_many(self, request: Mapping[str, Any]) -> dict:
        feeds = request.get("feeds")
        if not isinstance(feeds, list):
            raise ValueError("feed-many needs a 'feeds' list")
        fed = []
        applied = 0
        for item in feeds:
            session = self.pool.get(self._sid(item))
            enqueued = self._enqueue(session, item)
            fed.append((session, enqueued))
            applied += enqueued
        self._drain_or_rollback(fed)
        self._checkpoint_due()
        return {"ok": True, "applied": applied,
                "sessions": len({s.session_id for s, _ in fed})}

    def _op_close(self, request: Mapping[str, Any]) -> dict:
        session_id = self._sid(request)
        session = self.pool.close(session_id)
        digest = save_final_result(self.store, session)
        delete_session_checkpoint(self.store, self.server_id, session_id)
        self._checkpointed_steps.pop(session_id, None)
        self._save_manifest()
        return {"ok": True, "final": True, "digest": digest,
                "stream_digest": session.stream_digest(), **session.state()}

    # -- transports ------------------------------------------------------

    async def serve_stdio(self, out=None) -> None:
        """Serve newline-delimited JSON over stdin/stdout until EOF/shutdown."""
        out = out or sys.stdout
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        protocol = asyncio.StreamReaderProtocol(reader)
        await loop.connect_read_pipe(lambda: protocol, sys.stdin)
        while not self._stopping:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            reply = self.handle_line(line)
            out.write(json.dumps(reply) + "\n")
            out.flush()
        if not self._stopping:
            # EOF without an explicit shutdown: leave resumable state.
            self.checkpoint_all()

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0, out=None) -> None:
        """Serve the same line protocol over TCP; announces the bound port."""
        out = out or sys.stdout
        stop = asyncio.Event()

        async def client(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                while not self._stopping:
                    line = await reader.readline()
                    if not line:
                        break
                    if not line.strip():
                        continue
                    reply = self.handle_line(line)
                    writer.write((json.dumps(reply) + "\n").encode())
                    await writer.drain()
                    if self._stopping:
                        stop.set()
            finally:
                writer.close()

        server = await asyncio.start_server(client, host, port)
        bound = server.sockets[0].getsockname()
        out.write(f"listening on {bound[0]}:{bound[1]}\n")
        out.flush()
        async with server:
            await stop.wait()

    def run(self, *, host: str = "127.0.0.1", port: int | None = None) -> None:
        """Blocking entry point used by the CLI."""
        if port is None:
            asyncio.run(self.serve_stdio())
        else:
            asyncio.run(self.serve_tcp(host, port))
