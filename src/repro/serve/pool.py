"""Cross-lane tick loop over live sessions.

The pool is the serve layer's engine room: every tick it groups sessions
that have a pending step and share ``(algorithm, params, dim, cost_model)``,
packs each group into one wide :func:`~repro.core.engine.advance_lanes`
call — the exact per-step body of ``simulate_batch`` — and commits each
lane's row back to its session.

Bit-parity licensing
--------------------

A streamed lane must reproduce a standalone batch run of the same
instance bit-for-bit.  Three properties make cross-lane packing safe:

* the engine's arithmetic is row-wise (``einsum`` norms, per-row clamp,
  per-row service sums), so a lane's floats never depend on its batch
  neighbours — the same licensing the mega-batcher relies on;
* every truly vectorized algorithm's decision is independent of the step
  index ``t`` and of the batch composition given carried per-lane state,
  which sessions import/export around each wave
  (:meth:`~repro.core.engine.VectorizedAlgorithm.export_lane_states`);
* waves are sub-grouped by per-step request count ``r``, so a lane always
  sees the same packed ``(B, r, d)`` (or all-empty) request view it would
  see in its own batch run — packed and ragged assembly paths are never
  mixed for the same data.

Scalar-adapter lanes (algorithms without a vectorized path, or with
constructor parameters) do consume ``t``, so they are never packed into
multi-lane waves: the pool advances them one lane at a time with their
true step index.  With fusion disabled (``--no-fuse`` /
:func:`~repro.core.kernels.fusion_enabled`), *all* lanes take that
single-lane path — bit-identical by row independence, just slower, which
is what the serve benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..algorithms.registry import make_algorithm
from ..algorithms.vectorized import VECTORIZED, ScalarBatchAdapter, make_vectorized
from ..core.engine import BatchStepRequests, VectorizedAlgorithm, advance_lanes
from ..core.kernels import fusion_enabled
from ..core.metric import Metric, get_metric
from ..core.requests import RequestBatch
from ..core.validation import cap_tolerance
from .session import OnlineSession, SessionSpec

__all__ = ["SessionPool", "poolable"]

#: Cap on cached wave runtimes before a full rebuild; membership churn
#: (sessions opening/closing, request counts shifting between sub-waves)
#: creates new compositions, and rebinding is cheap relative to leaking.
_RUNTIME_CACHE_LIMIT = 64


def poolable(spec: SessionSpec) -> bool:
    """Whether lanes of this spec may share a multi-lane wave.

    True for parameter-free algorithms with a truly vectorized
    implementation under the default metric — those decide independently
    of ``t`` and of batch composition (given carried lane state).
    Everything else (including every non-euclidean lane: the truly
    vectorized implementations hardcode ℓ2) runs through the scalar
    adapter one lane at a time.
    """
    return (spec.algorithm in VECTORIZED and not spec.algorithm_params
            and spec.metric == "euclidean")


def _spec_metric(spec: SessionSpec) -> Metric | None:
    """The lane's metric instance; ``None`` keeps the exact ℓ2 hot path."""
    return None if spec.metric == "euclidean" else get_metric(spec.metric)


def _build_algorithm(spec: SessionSpec) -> VectorizedAlgorithm:
    metric = _spec_metric(spec)
    if poolable(spec):
        return VECTORIZED[spec.algorithm]()
    if spec.algorithm_params:
        kwargs = spec.algorithm_kwargs()
        adapter = ScalarBatchAdapter(
            lambda: make_algorithm(spec.algorithm, **kwargs), name=spec.algorithm
        )
        adapter.metric = metric
        return adapter
    return make_vectorized(spec.algorithm, metric=metric)


class _OneStep:
    """Single-step request-sequence stand-in for :class:`BatchStepRequests`."""

    __slots__ = ("_batch",)

    def __init__(self, points: np.ndarray) -> None:
        self._batch = RequestBatch(points)

    def __getitem__(self, t: int) -> RequestBatch:
        return self._batch


@dataclass
class _WaveRuntime:
    """One bound wave composition: algorithm plus per-lane engine arrays."""

    algo: VectorizedAlgorithm
    caps: np.ndarray
    tol: np.ndarray
    D: np.ndarray
    serve_after_move: np.ndarray
    counts_service: np.ndarray
    metric: "Metric | None"


class SessionPool:
    """Owns live sessions and advances them through shared engine waves.

    Parameters
    ----------
    fuse:
        Force cross-lane wave packing on/off; ``None`` (default) follows
        the global :func:`~repro.core.kernels.fusion_enabled` toggle —
        the same switch the CLI's ``--no-fuse`` flips.
    """

    def __init__(self, *, fuse: bool | None = None) -> None:
        self._fuse = fuse
        self.sessions: dict[str, OnlineSession] = {}
        self._wave_runtimes: dict[tuple, _WaveRuntime] = {}
        self._lane_runtimes: dict[str, _WaveRuntime] = {}
        self._seq = 0

    @property
    def wide(self) -> bool:
        """Whether poolable lanes are packed into multi-lane waves."""
        return fusion_enabled() if self._fuse is None else self._fuse

    def __len__(self) -> int:
        return len(self.sessions)

    # -- session lifecycle -----------------------------------------------

    def open(self, spec: SessionSpec, session_id: str | None = None) -> OnlineSession:
        if session_id is None:
            self._seq += 1
            session_id = f"s{self._seq}"
        session_id = str(session_id)
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} is already open")
        session = OnlineSession(spec, session_id)
        self.sessions[session_id] = session
        return session

    def get(self, session_id: str) -> OnlineSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def feed(self, session_id: str, points, at: int | None = None) -> bool:
        return self.get(session_id).feed(points, at=at)

    def close(self, session_id: str) -> OnlineSession:
        """Drain a session's queue, mark it closed and release it."""
        session = self.get(session_id)
        while session.pending:
            self.tick()
        session.closed = True
        del self.sessions[session_id]
        self._lane_runtimes.pop(session_id, None)
        self._wave_runtimes = {
            key: rt for key, rt in self._wave_runtimes.items()
            if session_id not in key[1]
        }
        return session

    # -- the tick loop ---------------------------------------------------

    def tick(self) -> int:
        """Advance every session with a pending step by exactly one step.

        Returns the number of lanes advanced.  A
        :class:`~repro.core.validation.MovementCapViolation` in a wave
        aborts that wave before any of its lanes commit (the batch
        engine's semantics); other groups are unaffected only if they
        ran earlier in the tick, so callers should treat a violation as
        fatal for the offending session and re-tick.
        """
        groups: dict[tuple, list[OnlineSession]] = {}
        for session in self.sessions.values():
            if session.pending:
                groups.setdefault(session.spec.group_key, []).append(session)
        advanced = 0
        wide = self.wide
        for lanes in groups.values():
            if wide and poolable(lanes[0].spec):
                # Sub-group by this step's request count so each wave is
                # uniformly packed (or uniformly empty) — see the module
                # docstring's parity licensing.
                sub_waves: dict[int, list[OnlineSession]] = {}
                for session in lanes:
                    r = int(session.pending[0].shape[0])
                    sub_waves.setdefault(r, []).append(session)
                for sub in sub_waves.values():
                    self._advance_wave(sub, grouped=True)
                    advanced += len(sub)
            else:
                for session in lanes:
                    self._advance_wave([session], grouped=False)
                    advanced += 1
        return advanced

    def drain(self) -> int:
        """Tick until no session has pending steps; returns lanes advanced."""
        advanced = 0
        while True:
            n = self.tick()
            if n == 0:
                return advanced
            advanced += n

    # -- wave internals --------------------------------------------------

    def _bind(self, sessions: Sequence[OnlineSession]) -> _WaveRuntime:
        """Build the engine-side arrays and algorithm for one composition.

        Mirrors ``simulate_batch``'s prologue exactly: per-lane caps via
        ``online_cap``, ``D`` and the cost-model mask off the instances,
        ``tol = caps + cap_tolerance(caps)``.
        """
        algo = _build_algorithm(sessions[0].spec)
        instances = [s.proto_instance for s in sessions]
        caps = np.array([s.spec.cap for s in sessions], dtype=np.float64)
        algo.reset_batch(instances, caps)
        return _WaveRuntime(
            algo=algo,
            caps=caps,
            tol=caps + cap_tolerance(caps),
            D=np.array([inst.D for inst in instances], dtype=np.float64),
            serve_after_move=np.array(
                [inst.cost_model.serves_after_move for inst in instances], dtype=bool
            ),
            counts_service=np.array(
                [inst.cost_model.counts_service for inst in instances], dtype=bool
            ),
            metric=_spec_metric(sessions[0].spec),
        )

    def _runtime_for(
        self, sessions: Sequence[OnlineSession], grouped: bool
    ) -> _WaveRuntime:
        if not grouped:
            # Per-lane runtime, keyed by session: keeps scalar-adapter
            # lanes from re-instantiating their scalar algorithm every
            # tick (the carried state would make it correct, just slow).
            sid = sessions[0].session_id
            runtime = self._lane_runtimes.get(sid)
            if runtime is None:
                runtime = self._bind(sessions)
                self._lane_runtimes[sid] = runtime
            return runtime
        key = (
            sessions[0].spec.group_key,
            tuple(s.session_id for s in sessions),
        )
        runtime = self._wave_runtimes.get(key)
        if runtime is None:
            if len(self._wave_runtimes) >= _RUNTIME_CACHE_LIMIT:
                self._wave_runtimes.clear()
            runtime = self._bind(sessions)
            self._wave_runtimes[key] = runtime
        return runtime

    def _advance_wave(
        self, sessions: Sequence[OnlineSession], grouped: bool
    ) -> None:
        runtime = self._runtime_for(sessions, grouped)
        algo = runtime.algo
        # Sessions own the truth of their lane's decision state; the
        # (possibly recomposed) algorithm instance is rehydrated per wave.
        algo.import_lane_states([s.lane_state for s in sessions])
        positions = np.stack([s.position for s in sessions])
        pts = [s.pending[0] for s in sessions]
        counts = np.array([p.shape[0] for p in pts], dtype=np.int64)
        r = int(counts[0])
        packed = np.stack(pts) if r > 0 and bool(np.all(counts == r)) else None
        step = BatchStepRequests([_OneStep(p) for p in pts], 0, counts, packed)
        # Multi-lane waves may mix sessions at different step indices;
        # poolable algorithms never consume ``t`` (that independence is
        # part of the poolable() contract).  Single-lane waves pass the
        # lane's true index for the scalar adapter.
        t = sessions[0].steps
        try:
            proposed, movement, service, moved = advance_lanes(
                algo, t, positions, step,
                caps=runtime.caps, tol=runtime.tol,
                D=runtime.D, serve_after_move=runtime.serve_after_move,
                counts_service=runtime.counts_service, metric=runtime.metric,
            )
        except Exception:
            # A failed decide may have mutated the algorithm's internals
            # without any lane committing; drop the cached runtime so a
            # retry rebinds from the sessions' (uncorrupted) lane states.
            # The offending session itself should be closed by the caller
            # — a cap violation would abort a batch run the same way.
            if grouped:
                self._wave_runtimes.pop(
                    (sessions[0].spec.group_key,
                     tuple(s.session_id for s in sessions)),
                    None,
                )
            else:
                self._lane_runtimes.pop(sessions[0].session_id, None)
            raise
        states = algo.export_lane_states()
        for i, session in enumerate(sessions):
            session.algorithm_label = algo.name
            session.commit_step(
                np.array(proposed[i], copy=True),
                movement[i], service[i], moved[i],
                states[i],
            )
