"""Exact offline optimum on small 2-D grids.

The plane version of the DP restricts positions to a ``gx × gy`` grid and
performs the full min-plus transition

.. math:: w_t(s) = \\min_{\\|s'-s\\| \\le m} \\big( w_{t-1}(s') + D\\|s'-s\\|
          \\big) + \\text{service}_t(s)

with a precomputed ``(S, S)`` masked transition matrix (entries outside the
movement disk are ``+inf``).  This is :math:`O(S^2)` per step — only viable
for small arenas (the default ``32 × 32`` grid gives ``S = 1024``) — but it
is *exact on the grid* and serves as ground truth for validating the convex
relaxation bounds and for measuring plane competitive ratios on short
adversarial instances (experiments E5, E11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import MSPInstance

__all__ = ["GridDPResult", "solve_grid"]


@dataclass(frozen=True)
class GridDPResult:
    """Outcome of the 2-D offline grid DP.

    Attributes
    ----------
    cost:
        Optimal total cost restricted to the grid.
    lower_bound:
        Certified lower bound on the continuous optimum, accounting for the
        per-step off-grid error.
    positions:
        ``(T + 1, 2)`` optimal grid trajectory.
    """

    cost: float
    lower_bound: float
    positions: np.ndarray

    @property
    def bracket(self) -> tuple[float, float]:
        return (self.lower_bound, self.cost)


def solve_grid(
    instance: MSPInstance,
    grid_shape: tuple[int, int] = (32, 32),
    padding: float = 1.0,
) -> GridDPResult:
    """Exact (grid-restricted) offline optimum for a 2-D instance.

    Parameters
    ----------
    grid_shape:
        ``(gx, gy)`` cells; cost is :math:`O(T (g_x g_y)^2)`.
    padding:
        Arena padding in multiples of ``m``.
    """
    if instance.dim != 2:
        raise ValueError(f"solve_grid requires dimension 2, got {instance.dim}")
    T = instance.length
    pts = instance.requests.all_points()
    lo = np.array(instance.start, dtype=np.float64)
    hi = lo.copy()
    if pts.shape[0]:
        lo = np.minimum(lo, pts.min(axis=0))
        hi = np.maximum(hi, pts.max(axis=0))
    pad = padding * instance.m + 1e-9
    lo -= pad
    hi += pad

    gx, gy = grid_shape
    xs = np.linspace(lo[0], hi[0], gx)
    ys = np.linspace(lo[1], hi[1], gy)
    # Shift so the start is exactly representable (see dp_line).
    xs = xs + (float(instance.start[0]) - xs[int(np.argmin(np.abs(xs - instance.start[0])))])
    ys = ys + (float(instance.start[1]) - ys[int(np.argmin(np.abs(ys - instance.start[1])))])
    hx = float(xs[1] - xs[0]) if gx > 1 else 0.0
    hy = float(ys[1] - ys[0]) if gy > 1 else 0.0
    cell_diag = float(np.hypot(hx, hy))
    nodes = np.stack(np.meshgrid(xs, ys, indexing="ij"), axis=-1).reshape(-1, 2)
    S = nodes.shape[0]

    # Two transition matrices: D * distance, masked at the movement disk.
    # The *feasible* mask (dist <= m) yields a continuous-feasible grid
    # trajectory -> upper bound.  The *relaxed* mask (dist <= m + one cell
    # diagonal) admits the snapped image of every continuous trajectory ->
    # lower bound after the snapping correction.
    diff = nodes[:, None, :] - nodes[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    trans = instance.D * dist
    trans_feasible = trans.copy()
    trans_feasible[dist > instance.m + 1e-12] = np.inf
    trans_relaxed = trans
    trans_relaxed[dist > instance.m + cell_diag + 1e-12] = np.inf

    start_idx = int(np.argmin(np.linalg.norm(nodes - instance.start, axis=1)))
    serve_after_move = instance.cost_model.serves_after_move
    requests = instance.requests
    service_rows = np.empty((T, S))
    for t in range(T):
        batch = requests[t]
        if batch.count:
            d = nodes[:, None, :] - batch.points[None, :, :]
            service_rows[t] = np.sqrt(np.einsum("ijk,ijk->ij", d, d)).sum(axis=1)
        else:
            service_rows[t] = 0.0

    def run(trans_mat: np.ndarray, keep: bool) -> tuple[float, np.ndarray | None]:
        w = np.full(S, np.inf)
        w[start_idx] = 0.0
        tabs = np.empty((T + 1, S)) if keep else None
        if tabs is not None:
            tabs[0] = w
        for t in range(T):
            if serve_after_move:
                w = (w[None, :] + trans_mat).min(axis=1) + service_rows[t]
            else:
                w = ((w + service_rows[t])[None, :] + trans_mat).min(axis=1)
            if tabs is not None:
                tabs[t + 1] = w
        return float(w.min()), tabs

    cost, tables = run(trans_feasible, keep=True)
    lower_raw, _ = run(trans_relaxed, keep=False)
    assert tables is not None
    trans = trans_feasible

    # Trajectory recovery (through the feasible tables).
    idx = int(np.argmin(tables[T]))
    indices = np.empty(T + 1, dtype=np.int64)
    indices[T] = idx
    for t in range(T, 0, -1):
        if serve_after_move:
            scores = tables[t - 1] + trans[idx] + service_rows[t - 1][idx]
        else:
            scores = tables[t - 1] + service_rows[t - 1] + trans[idx]
        target = tables[t][idx]
        finite = np.isfinite(scores)
        cand = np.nonzero(finite)[0]
        idx = int(cand[int(np.argmin(np.abs(scores[cand] - target)))])
        indices[t - 1] = idx

    positions = nodes[indices]
    # Snapping correction for the relaxed DP: each continuous position
    # snaps within cell_diag/2, inflating movement by at most cell_diag and
    # service by r_t * cell_diag / 2 per step, plus the snapped start.
    r = instance.requests.counts.astype(np.float64)
    per_step = (instance.D + 0.5 * r) * cell_diag
    lower = max(0.0, lower_raw - float(per_step.sum()) - instance.D * cell_diag)
    lower = min(lower, cost)  # numerical ordering guard
    return GridDPResult(cost=cost, lower_bound=lower, positions=positions)
