"""Exact offline optimum brackets on the line via dynamic programming.

For dimension 1 the offline problem discretizes cleanly: restrict server
positions to a uniform grid of pitch ``h`` spanning the instance's arena
and run the banded min-plus recursion

.. math:: w_t(s) = \\min_{|s'-s| \\le B h} \\big( w_{t-1}(s') + D|s'-s| \\big)
          + \\text{service}_t(s).

The band ``B`` is the crux of *certification*:

* **upper bound** — with ``B = floor(m/h)`` every grid trajectory moves at
  most ``m`` per step, so the DP value is the cost of a *feasible*
  continuous solution: ``OPT <= dp_upper``;
* **lower bound** — with ``B = floor(m/h) + 2`` every continuous
  trajectory snaps onto the grid (nearest grid point, error ``h/2`` per
  endpoint) into a band-feasible one whose movement grows by at most ``h``
  and service by ``r_t h / 2`` per step, hence
  ``OPT >= dp_lower - sum_t (D + r_t/2) h``.

Earlier versions used a single ``floor`` band with an additive error term;
that silently *over*-estimated OPT on workloads drifting faster than
``floor(m/h)·h`` per step (the grid server couldn't keep up) — the
two-band bracket makes both sides sound for every workload.

The grid is auto-sized so that a per-step move spans several cells
(``cells_per_move``); the transition is ``B`` sweeps of in-place neighbour
relaxation (``O(S·B)`` per step), realising every shift of up to ``B``
cells at exactly ``D·h`` per cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import MSPInstance

__all__ = ["LineDPResult", "solve_line"]


@dataclass(frozen=True)
class LineDPResult:
    """Outcome of the 1-D offline DP.

    Attributes
    ----------
    cost:
        Cost of the best *feasible* grid trajectory (upper bound on the
        continuous optimum).
    lower_bound:
        Certified lower bound on the continuous optimum (relaxed-band DP
        value minus the snapping correction).
    positions:
        ``(T + 1, 1)`` feasible trajectory achieving ``cost``.
    grid:
        The ``(S,)`` grid used.
    """

    cost: float
    lower_bound: float
    positions: np.ndarray
    grid: np.ndarray

    @property
    def bracket(self) -> tuple[float, float]:
        """``(lower_bound, cost)`` sandwich of the continuous optimum."""
        return (self.lower_bound, self.cost)


def _arena(instance: MSPInstance, padding: float) -> tuple[float, float]:
    pts = instance.requests.all_points()
    lo = hi = float(instance.start[0])
    if pts.shape[0]:
        lo = min(lo, float(pts.min()))
        hi = max(hi, float(pts.max()))
    pad = padding * instance.m + 1e-9
    return lo - pad, hi + pad


def _run_dp(
    instance: MSPInstance,
    grid: np.ndarray,
    band: int,
    keep_tables: bool,
) -> tuple[float, np.ndarray | None]:
    """One banded DP pass; returns (min cost, tables or None)."""
    T = instance.length
    S = grid.shape[0]
    h = float(grid[1] - grid[0])
    D = instance.D
    serve_after_move = instance.cost_model.serves_after_move
    start_idx = int(np.argmin(np.abs(grid - float(instance.start[0]))))
    w = np.full(S, np.inf)
    w[start_idx] = 0.0
    tables = np.empty((T + 1, S)) if keep_tables else None
    if tables is not None:
        tables[0] = w
    step_cost = D * h

    requests = instance.requests
    for t in range(T):
        batch = requests[t]
        if batch.count:
            service = np.abs(grid[:, None] - batch.points[:, 0][None, :]).sum(axis=1)
        else:
            service = None
        if not serve_after_move and service is not None:
            w = w + service
        out = w.copy()
        for _ in range(band):
            np.minimum(out[1:], out[:-1] + step_cost, out=out[1:])
            np.minimum(out[:-1], out[1:] + step_cost, out=out[:-1])
        w = out
        if serve_after_move and service is not None:
            w = w + service
        if tables is not None:
            tables[t + 1] = w
    return float(w.min()), tables


def _recover(
    instance: MSPInstance,
    grid: np.ndarray,
    band: int,
    tables: np.ndarray,
) -> np.ndarray:
    """Backward argmin through the feasible DP tables."""
    T = instance.length
    S = grid.shape[0]
    h = float(grid[1] - grid[0])
    D = instance.D
    serve_after_move = instance.cost_model.serves_after_move
    requests = instance.requests

    idx = int(np.argmin(tables[T]))
    indices = np.empty(T + 1, dtype=np.int64)
    indices[T] = idx
    for t in range(T, 0, -1):
        batch = requests[t - 1]
        lo_i = max(0, idx - band)
        hi_i = min(S, idx + band + 1)
        cand = np.arange(lo_i, hi_i)
        move = D * h * np.abs(cand - idx)
        if serve_after_move:
            if batch.count:
                service_here = float(np.abs(grid[idx] - batch.points[:, 0]).sum())
            else:
                service_here = 0.0
            scores = tables[t - 1][cand] + move + service_here
        else:
            if batch.count:
                service_prev = np.abs(
                    grid[cand][:, None] - batch.points[:, 0][None, :]
                ).sum(axis=1)
            else:
                service_prev = 0.0
            scores = tables[t - 1][cand] + service_prev + move
        target = tables[t][idx]
        finite = np.isfinite(scores)
        pool = cand[finite]
        idx = int(pool[int(np.argmin(np.abs(scores[finite] - target)))])
        indices[t - 1] = idx
    return grid[indices][:, None]


def solve_line(
    instance: MSPInstance,
    grid_size: int | None = None,
    padding: float = 2.0,
    cells_per_move: int = 8,
    max_grid: int = 16384,
) -> LineDPResult:
    """Bracket the offline optimum of a 1-D instance by two banded DPs.

    Parameters
    ----------
    instance:
        A dimension-1 instance; both cost models are supported.
    grid_size:
        Explicit grid size ``S``.  Default: auto-sized so that one
        per-step move spans ``cells_per_move`` cells, clamped to
        ``[256, max_grid]`` — on long fast-drift arenas this is what keeps
        the feasible DP able to follow the workload.
    padding:
        Arena padding in multiples of ``m`` beyond the request range.
    """
    if instance.dim != 1:
        raise ValueError(f"solve_line requires dimension 1, got {instance.dim}")
    lo, hi = _arena(instance, padding)
    if hi - lo <= 0:
        hi = lo + 1e-6
    if grid_size is None:
        span = hi - lo
        grid_size = int(np.ceil(span / instance.m * cells_per_move)) + 1
        grid_size = min(max(grid_size, 256), max_grid)
    grid = np.linspace(lo, hi, grid_size)
    # Shift the grid so the start position is exactly representable —
    # otherwise stationary-optimal instances pay a spurious offset forever.
    start_x = float(instance.start[0])
    nearest = grid[int(np.argmin(np.abs(grid - start_x)))]
    grid = grid + (start_x - nearest)
    h = float(grid[1] - grid[0])
    band_feasible = max(1, int(np.floor(instance.m / h + 1e-12)))
    band_relaxed = band_feasible + 2

    upper_cost, tables = _run_dp(instance, grid, band_feasible, keep_tables=True)
    lower_cost, _ = _run_dp(instance, grid, band_relaxed, keep_tables=False)
    assert tables is not None
    positions = _recover(instance, grid, band_feasible, tables)

    # Snapping correction: a continuous trajectory maps to a
    # band_relaxed-feasible grid trajectory with movement +h and service
    # +r_t*h/2 per step; the snapped start costs one extra D*h.
    r = instance.requests.counts.astype(np.float64)
    correction = float(((instance.D + 0.5 * r) * h).sum()) + instance.D * h
    lower = max(0.0, lower_cost - correction)
    lower = min(lower, upper_cost)  # numerical ordering guard
    return LineDPResult(cost=upper_cost, lower_bound=lower, positions=positions, grid=grid)
