"""Convex bounds on the offline optimum in arbitrary dimension.

Dropping the movement cap makes the offline problem an unconstrained convex
program over the trajectory :math:`P_1, \\dots, P_T`:

.. math:: \\min \\; \\sum_t D\\,\\|P_t - P_{t-1}\\| + \\sum_{t,i} \\|P_t - v_{t,i}\\|

(sum of Euclidean norms = convex).  Its optimum is a **lower bound** on the
capped optimum since every capped trajectory is feasible for the relaxation.
We minimize a smoothed surrogate :math:`\\sqrt{\\|x\\|^2+\\varepsilon^2}` with
L-BFGS; since the surrogate dominates the true cost and exceeds it by at
most :math:`\\varepsilon` per norm term, ``smoothed_minimum − ε·N`` is a
*certified* lower bound on the relaxed (hence the capped) optimum.

An **upper bound** comes from repairing the relaxed trajectory into a
feasible one (:func:`project_to_cap`: greedily clamp each step to the cap)
and replaying its true cost.  Together these bracket the capped optimum in
any dimension, and :func:`bracket_optimum` in :mod:`repro.offline.bounds`
tightens the bracket with the exact DP when the dimension allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from ..core.metric import move_towards
from ..core.instance import MSPInstance
from ..core.simulator import replay_cost

__all__ = ["ConvexBound", "relaxed_lower_bound", "project_to_cap", "convex_bracket"]


@dataclass(frozen=True)
class ConvexBound:
    """Bracket of the capped offline optimum from the convex relaxation.

    Attributes
    ----------
    lower:
        Certified lower bound (relaxed optimum minus smoothing slack).
    upper:
        Cost of a feasible (cap-respecting) trajectory.
    relaxed_positions:
        ``(T + 1, d)`` minimizer of the relaxation.
    feasible_positions:
        ``(T + 1, d)`` repaired trajectory achieving ``upper``.
    """

    lower: float
    upper: float
    relaxed_positions: np.ndarray
    feasible_positions: np.ndarray

    @property
    def bracket(self) -> tuple[float, float]:
        return (self.lower, self.upper)


def _objective_and_grad(
    flat: np.ndarray,
    start: np.ndarray,
    batches: list[np.ndarray],
    D: float,
    eps: float,
    dim: int,
) -> tuple[float, np.ndarray]:
    """Smoothed cost and gradient for the move-first relaxation."""
    T = len(batches)
    P = flat.reshape(T, dim)
    prev = np.vstack([start[None, :], P[:-1]])
    seg = P - prev
    seg_norm = np.sqrt(np.einsum("ij,ij->i", seg, seg) + eps * eps)
    cost = D * float(seg_norm.sum())
    grad = np.zeros_like(P)
    unit = seg / seg_norm[:, None]
    grad += D * unit
    grad[:-1] -= D * unit[1:]
    for t, pts in enumerate(batches):
        if pts.shape[0] == 0:
            continue
        d = P[t] - pts
        dn = np.sqrt(np.einsum("ij,ij->i", d, d) + eps * eps)
        cost += float(dn.sum())
        grad[t] += (d / dn[:, None]).sum(axis=0)
    return cost, grad.ravel()


def relaxed_lower_bound(
    instance: MSPInstance,
    eps: float = 1e-6,
    max_iter: int = 2000,
) -> tuple[float, np.ndarray]:
    """Certified lower bound on the capped optimum, with the relaxed path.

    Returns ``(lower_bound, positions)`` where ``positions`` is the
    ``(T + 1, d)`` relaxed trajectory (start prepended).

    Notes
    -----
    Only the move-first model is supported directly; the answer-first
    optimum of a sequence differs from the move-first optimum of the same
    sequence by at most one step's service (Theorem 7's dummy-request
    argument), which callers account for explicitly when needed.
    """
    T = instance.length
    dim = instance.dim
    if T == 0:
        return 0.0, instance.start[None, :].copy()
    batches = [instance.requests[t].points for t in range(T)]
    # Warm start: each P_t at its batch centroid (or previous position).
    init = np.empty((T, dim))
    cur = np.asarray(instance.start, dtype=np.float64)
    for t, pts in enumerate(batches):
        if pts.shape[0]:
            cur = pts.mean(axis=0)
        init[t] = cur
    n_terms = T + int(instance.requests.total_requests())

    res = minimize(
        _objective_and_grad,
        init.ravel(),
        args=(instance.start, batches, instance.D, eps, dim),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter, "ftol": 1e-12, "gtol": 1e-10},
    )
    P = res.x.reshape(T, dim)
    positions = np.vstack([instance.start[None, :], P])
    lower = max(0.0, float(res.fun) - eps * n_terms)
    return lower, positions


def project_to_cap(positions: np.ndarray, start: np.ndarray, cap: float) -> np.ndarray:
    """Greedy repair of a trajectory into a cap-feasible one.

    Each step moves from the repaired previous position towards the target
    trajectory's next point, clamped at ``cap``.  The result starts at
    ``start`` and never violates the cap.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2:
        raise ValueError("positions must be (T+1, d) or (T, d)")
    targets = positions[1:] if positions.shape[0] > 0 and np.allclose(positions[0], start) else positions
    out = np.empty((targets.shape[0] + 1, targets.shape[1]))
    out[0] = start
    cur = np.asarray(start, dtype=np.float64)
    for t in range(targets.shape[0]):
        cur = move_towards(cur, targets[t], cap)
        out[t + 1] = cur
    return out


def convex_bracket(instance: MSPInstance, eps: float = 1e-6) -> ConvexBound:
    """Bracket the capped offline optimum via the convex relaxation."""
    lower, relaxed = relaxed_lower_bound(instance, eps=eps)
    feasible = project_to_cap(relaxed, instance.start, instance.m)
    upper_trace = replay_cost(instance, feasible, validate_cap=instance.m)
    upper = upper_trace.total_cost
    # Numerical guard: the bracket must be ordered.
    lower = min(lower, upper)
    return ConvexBound(
        lower=lower,
        upper=upper,
        relaxed_positions=relaxed,
        feasible_positions=feasible,
    )
