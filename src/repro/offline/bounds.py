"""Unified offline-optimum brackets.

Experiments need a number for :math:`C_{Opt}`; this module picks the best
available method per instance:

* dimension 1 → exact grid DP (:mod:`repro.offline.dp_line`), tight;
* dimension 2, tiny arena → exact grid DP (:mod:`repro.offline.dp_grid`);
* otherwise → convex relaxation bracket (:mod:`repro.offline.convex`).

The returned :class:`OptBracket` carries ``(lower, upper)`` with
``lower <= OPT <= upper`` so ratio computations can quote certified
ranges: ``C_Alg / upper <= ratio <= C_Alg / lower``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import MSPInstance
from .convex import convex_bracket
from .dp_grid import solve_grid
from .dp_line import solve_line

__all__ = ["OptBracket", "bracket_optimum"]


@dataclass(frozen=True)
class OptBracket:
    """A certified sandwich of the offline optimum.

    Attributes
    ----------
    lower, upper:
        ``lower <= OPT <= upper``.
    method:
        Which solver produced the bracket (``"dp-line"``, ``"dp-grid"``,
        ``"convex"``).
    positions:
        A feasible trajectory achieving ``upper`` (``(T + 1, d)``).
    """

    lower: float
    upper: float
    method: str
    positions: np.ndarray

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def relative_gap(self) -> float:
        """``(upper - lower) / upper`` (0 for exact methods on-grid)."""
        if self.upper <= 0:
            return 0.0
        return (self.upper - self.lower) / self.upper

    def as_payload(self) -> dict:
        """Store-compatible payload (exact; arrays kept bit-for-bit)."""
        return {
            "lower": float(self.lower),
            "upper": float(self.upper),
            "method": self.method,
            "positions": np.asarray(self.positions),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "OptBracket":
        return cls(
            lower=payload["lower"],
            upper=payload["upper"],
            method=payload["method"],
            positions=payload["positions"],
        )


def bracket_optimum(
    instance: MSPInstance,
    grid_size: int | None = None,
    grid_shape: tuple[int, int] = (32, 32),
    prefer: str | None = None,
) -> OptBracket:
    """Bracket the offline optimum of ``instance``.

    Parameters
    ----------
    prefer:
        Force a method: ``"dp-line"``, ``"dp-grid"`` or ``"convex"``.
        Defaults to the best method for the dimension (DP for 1-D, convex
        otherwise; ``"dp-grid"`` is opt-in because of its :math:`O(S^2)`
        transition).
    """
    method = prefer
    if method is None:
        method = "dp-line" if instance.dim == 1 else "convex"

    if method == "dp-line":
        res = solve_line(instance, grid_size=grid_size)
        return OptBracket(res.lower_bound, res.cost, "dp-line", res.positions)
    if method == "dp-grid":
        res2 = solve_grid(instance, grid_shape=grid_shape)
        return OptBracket(res2.lower_bound, res2.cost, "dp-grid", res2.positions)
    if method == "convex":
        cb = convex_bracket(instance)
        return OptBracket(cb.lower, cb.upper, "convex", cb.feasible_positions)
    raise ValueError(f"unknown method {method!r}")
