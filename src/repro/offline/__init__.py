"""Offline-optimum solvers and brackets.

* :func:`solve_line` — exact 1-D grid DP (with certified error bracket);
* :func:`solve_grid` — exact small 2-D grid DP;
* :func:`convex_bracket` — relaxation lower bound + repaired feasible upper
  bound, any dimension;
* :func:`bracket_optimum` — method dispatch returning an
  :class:`OptBracket`.
"""

from .bounds import OptBracket, bracket_optimum
from .convex import ConvexBound, convex_bracket, project_to_cap, relaxed_lower_bound
from .dp_grid import GridDPResult, solve_grid
from .dp_line import LineDPResult, solve_line

__all__ = [
    "ConvexBound",
    "GridDPResult",
    "LineDPResult",
    "OptBracket",
    "bracket_optimum",
    "convex_bracket",
    "project_to_cap",
    "relaxed_lower_bound",
    "solve_grid",
    "solve_line",
]
