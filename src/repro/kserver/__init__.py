"""k-server baselines on the line (related-work substrate)."""

from .double_coverage import (
    KServerResult,
    double_coverage_line,
    greedy_kserver_line,
    offline_kserver_line,
)

__all__ = [
    "KServerResult",
    "double_coverage_line",
    "greedy_kserver_line",
    "offline_kserver_line",
]
