"""Double Coverage for the k-server problem on the line.

The paper frames the k-Server Problem as the "requests must be satisfied
by moving a copy onto them" extreme of page migration, and suggests
(conclusion) applying capped movement to it.  We implement the classical
k-competitive Double Coverage algorithm on the line as the related-work
baseline, plus the greedy heuristic it famously beats:

* if the request falls outside the servers' hull, the nearest server moves
  onto it;
* otherwise the two neighbouring servers move *towards* it at equal speed
  until one arrives.

:func:`offline_kserver_line` computes the exact offline optimum by DP over
server configurations for small ``k``/short sequences, so DC's measured
ratio against OPT can be compared with the proved factor ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KServerResult", "double_coverage_line", "greedy_kserver_line", "offline_kserver_line"]


@dataclass(frozen=True)
class KServerResult:
    """Outcome of a k-server run.

    Attributes
    ----------
    total:
        Total movement cost (k-server has no separate service cost).
    positions:
        ``(T + 1, k)`` sorted server configurations over time.
    """

    total: float
    positions: np.ndarray


def double_coverage_line(servers: np.ndarray, requests: np.ndarray) -> KServerResult:
    """Run Double Coverage on the line.

    Parameters
    ----------
    servers:
        Initial server positions, shape ``(k,)``.
    requests:
        Request points, shape ``(T,)``.
    """
    s = np.sort(np.asarray(servers, dtype=np.float64))
    k = s.shape[0]
    requests = np.asarray(requests, dtype=np.float64)
    T = requests.shape[0]
    hist = np.empty((T + 1, k))
    hist[0] = s
    total = 0.0
    for t in range(T):
        x = float(requests[t])
        if x <= s[0]:
            total += s[0] - x
            s[0] = x
        elif x >= s[-1]:
            total += x - s[-1]
            s[-1] = x
        else:
            j = int(np.searchsorted(s, x)) - 1
            left, right = s[j], s[j + 1]
            d = min(x - left, right - x)
            s[j] += d
            s[j + 1] -= d
            total += 2.0 * d
            # One of them is now exactly on x (the closer one).
            if abs(s[j] - x) > abs(s[j + 1] - x):
                s[j + 1] = x
            else:
                s[j] = x
        s.sort()
        hist[t + 1] = s
    return KServerResult(total=total, positions=hist)


def greedy_kserver_line(servers: np.ndarray, requests: np.ndarray) -> KServerResult:
    """Greedy: always move the nearest server onto the request.

    Known to be non-competitive (two alternating nearby requests starve a
    distant server) — included as the contrast to DC.
    """
    s = np.sort(np.asarray(servers, dtype=np.float64))
    k = s.shape[0]
    requests = np.asarray(requests, dtype=np.float64)
    T = requests.shape[0]
    hist = np.empty((T + 1, k))
    hist[0] = s
    total = 0.0
    for t in range(T):
        x = float(requests[t])
        j = int(np.argmin(np.abs(s - x)))
        total += abs(s[j] - x)
        s[j] = x
        s.sort()
        hist[t + 1] = s
    return KServerResult(total=total, positions=hist)


def offline_kserver_line(servers: np.ndarray, requests: np.ndarray) -> float:
    """Exact offline optimum via DP over configurations.

    States are k-subsets of the interesting points (initial positions and
    request points); transitions move one server onto the next request.
    Exponential in ``k`` — intended for ``k <= 3`` and short sequences.
    """
    s0 = tuple(sorted(float(x) for x in np.asarray(servers, dtype=np.float64)))
    requests = np.asarray(requests, dtype=np.float64)
    k = len(s0)

    # The optimum only ever moves a server onto the current request, so
    # reachable configurations are subsets of {initial} ∪ {requests}.
    states: dict[tuple, float] = {s0: 0.0}
    for x in requests:
        x = float(x)
        new_states: dict[tuple, float] = {}
        for conf, cost in states.items():
            if x in conf:
                if cost < new_states.get(conf, np.inf):
                    new_states[conf] = cost
                continue
            for i in range(k):
                moved = tuple(sorted(conf[:i] + (x,) + conf[i + 1:]))
                c = cost + abs(conf[i] - x)
                if c < new_states.get(moved, np.inf):
                    new_states[moved] = c
        states = new_states
    return float(min(states.values()))
