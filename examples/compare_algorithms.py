#!/usr/bin/env python3
"""Algorithm shoot-out across the standard workload suite.

Runs every registered algorithm on every 1-D workload of the standard
suite and prints a matrix of certified competitive-ratio upper bounds
(cost / exact-DP lower bound).  This is the "who should I deploy" view a
practitioner would want; the expected reading is that Move-to-Center is
never far from the best column-wise, while each baseline has a workload
that breaks it.

Run:  python examples/compare_algorithms.py
"""

import numpy as np

from repro.algorithms import compatible_algorithms, make_algorithm
from repro.analysis import measure_ratio, render_table
from repro.offline import bracket_optimum
from repro.workloads import standard_suite


def main() -> None:
    suite = standard_suite(T=300, dim=1, D=4.0, m=1.0)
    # Capability metadata picks what can play 1-D plain-MSP instances.
    algorithms = compatible_algorithms(dim=1, moving_client=False)
    delta = 0.5

    table: dict[str, dict[str, float]] = {a: {} for a in algorithms}
    for wl_name, workload in suite.items():
        instance = workload.generate(np.random.default_rng(1))
        bracket = bracket_optimum(instance)
        for alg_name in algorithms:
            meas = measure_ratio(instance, make_algorithm(alg_name), delta=delta,
                                 bracket=bracket)
            table[alg_name][wl_name] = meas.ratio_upper

    workload_names = list(suite)
    rows = []
    for alg_name in algorithms:
        per = table[alg_name]
        rows.append([alg_name] + [per[w] for w in workload_names]
                    + [max(per.values())])
    rows.sort(key=lambda r: r[-1])
    print(render_table(
        ["algorithm"] + workload_names + ["worst"],
        rows,
        title=f"Certified ratio upper bounds (1-D suite, D=4, delta={delta})",
        precision=2,
    ))
    print()
    print("Reading: sorted by worst-case column; the paper's MtC should sit at or")
    print("near the top while each heuristic has a workload that defeats it.")


if __name__ == "__main__":
    main()
