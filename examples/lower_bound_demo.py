#!/usr/bin/env python3
"""Watch the lower bounds bite.

Executes the paper's Theorem-1 and Theorem-2 adversary constructions
against Move-to-Center and shows the two headline phenomena:

1. without augmentation, the competitive ratio grows like sqrt(T) — no
   online algorithm can escape (Theorem 1);
2. with (1+delta)m augmentation the ratio stops depending on T but scales
   like 1/delta (Theorem 2 lower bound, Theorem 4 upper bound) — the
   augmentation *is* the price of online-ness here.

Run:  python examples/lower_bound_demo.py
"""

import numpy as np

from repro import MoveToCenter, simulate
from repro.adversaries import build_thm1, build_thm2
from repro.analysis import fit_power_law, render_table


def main() -> None:
    seeds = range(8)

    rows1 = []
    means = []
    Ts = [256, 1024, 4096, 16384]
    for T in Ts:
        ratios = []
        for s in seeds:
            adv = build_thm1(T, D=1.0, rng=np.random.default_rng(s))
            trace = simulate(adv.instance, MoveToCenter(), delta=0.0)
            ratios.append(adv.ratio_of(trace.total_cost))
        mean = float(np.mean(ratios))
        means.append(mean)
        rows1.append([T, mean, float(np.sqrt(T))])
    fit = fit_power_law(np.array(Ts, dtype=float), np.array(means))
    print(render_table(
        ["T", "E[ratio] of MtC (delta=0)", "sqrt(T)"],
        rows1,
        title="Theorem 1: no augmentation -> ratio grows with T",
        precision=2,
    ))
    print(f"  fitted growth exponent: {fit.exponent:.3f} (paper predicts 0.5, "
          f"R^2={fit.r_squared:.3f})\n")

    rows2 = []
    for delta in (1.0, 0.5, 0.25, 0.125, 0.0625):
        ratios = []
        for s in seeds:
            adv = build_thm2(delta, cycles=4, rng=np.random.default_rng(s))
            trace = simulate(adv.instance, MoveToCenter(), delta=delta)
            ratios.append(adv.ratio_of(trace.total_cost))
        rows2.append([delta, 1.0 / delta, float(np.mean(ratios))])
    print(render_table(
        ["delta", "1/delta", "E[ratio] of MtC (augmented)"],
        rows2,
        title="Theorem 2: with (1+delta)m augmentation the ratio scales like 1/delta",
        precision=3,
    ))
    print("  note how the ratio no longer grows with T but tracks 1/delta.")


if __name__ == "__main__":
    main()
