#!/usr/bin/env python3
"""Disaster response with a mobile signal station (Section 5's scenario).

A rescue helper patrols a disaster area (random-waypoint mobility); a
mobile signal station holding the shared data page follows them.  The
Moving Client variant's dichotomy:

* if the station is at least as fast as the helper (m_s >= m_a), the
  Theorem-10 strategy — move min(m_s, d/D) towards the helper — is
  O(1)-competitive *without* any resource augmentation;
* if the helper is faster, Theorem 8 says no online strategy can be
  competitive: on the adversarial sprint construction the measured ratio
  grows like sqrt(T).

The script demonstrates both regimes.

Run:  python examples/disaster_response.py
"""

import numpy as np

from repro import MovingClientMtC, simulate, simulate_moving_client
from repro.adversaries import build_thm8
from repro.analysis import render_table
from repro.offline import bracket_optimum
from repro.workloads import PatrolAgentWorkload


def main() -> None:
    rows = []

    # Regime 1: station as fast as the helper -> flat, small ratios.
    for T in (200, 400, 800):
        workload = PatrolAgentWorkload(T=T, dim=2, D=4.0, m_server=1.0, m_agent=1.0,
                                       arena=20.0)
        mc = workload.generate(np.random.default_rng(11))
        trace = simulate_moving_client(mc, MovingClientMtC(), delta=0.0)
        bracket = bracket_optimum(mc.as_msp())
        ratio = trace.total_cost / bracket.lower if bracket.lower > 0 else float("inf")
        rows.append(["patrol m_s = m_a", T, trace.total_cost, ratio])

    # Regime 2: helper twice as fast, adversarial sprint -> diverging ratio.
    for T in (512, 2048, 8192):
        adv = build_thm8(T, epsilon=1.0, rng=np.random.default_rng(5))
        trace = simulate(adv.instance, MovingClientMtC(), delta=0.0)
        rows.append(["thm8 sprint m_a = 2 m_s", T, trace.total_cost,
                     adv.ratio_of(trace.total_cost)])

    print(render_table(
        ["regime", "T", "online cost", "ratio"],
        rows,
        title="Moving Client variant: station speed decides competitiveness",
        precision=2,
    ))
    print()
    print("Reading: with m_s >= m_a the ratio is flat in T (Theorem 10, O(1), no")
    print("augmentation); with a faster agent it grows ~ sqrt(T) (Theorem 8).")


if __name__ == "__main__":
    main()
