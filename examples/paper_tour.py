#!/usr/bin/env python3
"""A guided terminal tour of the paper's results, with ASCII charts.

Three scenes:

1. **Theorem 1** — the running competitive ratio of an un-augmented server
   on the adversarial drift construction *keeps climbing* (~sqrt(t)), while
   the same server with delta = 0.5 flattens immediately;
2. **Theorem 4** — on a benign drift workload, MtC's running ratio against
   the exact DP optimum settles to a constant: the picture of
   "competitive ratio independent of T";
3. **the model itself** — a 2-D raster of MtC travelling with a vehicle
   platoon (server path over the request cloud).

Run:  python examples/paper_tour.py
"""

import numpy as np

from repro import MoveToCenter, simulate
from repro.adversaries import build_thm1
from repro.analysis import ratio_curve
from repro.offline import solve_line
from repro.viz import render_line_chart, render_plane, sparkline
from repro.workloads import DriftWorkload, VehiclePlatoonWorkload


def scene_theorem1() -> None:
    adv = build_thm1(2048, rng=np.random.default_rng(1))
    curves = {}
    for delta, label in ((0.0, "delta=0 (Thm 1 bites)"), (0.5, "delta=0.5 (augmented)")):
        tr = simulate(adv.instance, MoveToCenter(), delta=delta)
        curve = ratio_curve(adv.instance, tr, adv.adversary_positions, burn_in=32)
        curves[label] = curve[~np.isnan(curve)]
    print(render_line_chart(
        curves,
        title="Scene 1 — Theorem 1: running ratio vs t on the adversarial construction",
    ))
    print()


def scene_theorem4() -> None:
    wl = DriftWorkload(600, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2,
                       requests_per_step=4)
    inst = wl.generate(np.random.default_rng(2))
    tr = simulate(inst, MoveToCenter(), delta=0.5)
    dp = solve_line(inst)
    curve = ratio_curve(inst, tr, dp.positions, burn_in=16)
    clean = curve[~np.isnan(curve)]
    print(render_line_chart(
        {"MtC / exact DP OPT": clean},
        title="Scene 2 — Theorem 4: MtC's running certified ratio settles to a constant",
        height=12,
    ))
    print(f"final ratio: {clean[-1]:.3f}   sparkline: {sparkline(clean)}")
    print()


def scene_model() -> None:
    wl = VehiclePlatoonWorkload(T=250, dim=2, D=8.0, m=1.0, n_vehicles=5,
                                road_speed=0.7, turn_sigma=0.06)
    inst = wl.generate(np.random.default_rng(3))
    tr = simulate(inst, MoveToCenter(), delta=0.5)
    print(render_plane(
        tr.positions,
        requests=inst.requests.all_points(),
        title="Scene 3 — the model: MtC (S..E) travelling with a vehicle platoon (.)",
    ))


def main() -> None:
    scene_theorem1()
    scene_theorem4()
    scene_model()


if __name__ == "__main__":
    main()
