#!/usr/bin/env python3
"""Edge computing for an autonomous-vehicle platoon (the paper's intro).

A platoon of six vehicles shares a data page (map updates, coordination
state).  The page lives on a mobile server — think one of the cars or a
support drone — that can move a bounded distance per time step.  Each
vehicle requests data every step; serving costs grow with distance.

The script compares the paper's Move-to-Center against the strategies an
engineer might try first (follow the last requester, lazy relocation,
never move, batch-then-jump Move-To-Min) while the platoon drives a long
noisy road.  Expected outcome: the static and lazy servers degrade
linearly as the platoon drives away, while MtC travels with the platoon
and stays within a small factor of the offline optimum.

Run:  python examples/edge_computing_vehicles.py
"""

import numpy as np

from repro import simulate
from repro.algorithms import (
    FollowLastRequest,
    LazyThreshold,
    MoveToCenter,
    MoveToMin,
    StaticServer,
)
from repro.analysis import render_table
from repro.offline import bracket_optimum
from repro.workloads import VehiclePlatoonWorkload


def main() -> None:
    workload = VehiclePlatoonWorkload(
        T=600,
        dim=2,
        D=8.0,           # the page is heavy: movement is 8x distance
        m=1.0,
        n_vehicles=6,
        road_speed=0.8,  # the platoon moves at 80% of the server's speed cap
        turn_sigma=0.04,
        formation_radius=2.0,
    )
    instance = workload.generate(np.random.default_rng(7))
    bracket = bracket_optimum(instance)  # convex bracket in 2-D

    algorithms = [
        MoveToCenter(),
        FollowLastRequest(),
        LazyThreshold(threshold_factor=1.0),
        MoveToMin(),
        StaticServer(),
    ]
    delta = 0.5
    rows = []
    for alg in algorithms:
        trace = simulate(instance, alg, delta=delta)
        rows.append([
            alg.name,
            trace.total_cost,
            trace.total_movement_cost,
            trace.total_service_cost,
            trace.total_cost / bracket.lower if bracket.lower > 0 else float("inf"),
        ])
    rows.sort(key=lambda r: r[1])
    print(render_table(
        ["algorithm", "total", "movement", "service", "ratio (cert. <=)"],
        rows,
        title=(f"Vehicle platoon: T={workload.T}, D={workload.D}, "
               f"road speed {workload.road_speed}, delta={delta}; "
               f"OPT in [{bracket.lower:.1f}, {bracket.upper:.1f}]"),
        precision=2,
    ))
    print()
    print("Reading: the platoon drives ~{:.0f} units; a server that stays behind".format(
        workload.T * workload.road_speed))
    print("pays service distance growing with the road; MtC tracks the formation's")
    print("weighted center and stays near-optimal.")


if __name__ == "__main__":
    main()
