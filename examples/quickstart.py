#!/usr/bin/env python3
"""Quickstart: simulate Move-to-Center on a random-walk workload.

Builds a small 2-D instance, runs the paper's algorithm with resource
augmentation delta = 0.5, and prints the cost breakdown plus a certified
competitive-ratio bracket against the convex offline bound.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MoveToCenter, MSPInstance, RequestSequence, simulate
from repro.analysis import measure_ratio

def main() -> None:
    rng = np.random.default_rng(42)

    # A demand point random-walks through the plane; each step two clients
    # request data from nearby.
    T = 400
    demand = np.cumsum(rng.normal(scale=0.3, size=(T, 2)), axis=0)
    requests = demand[:, None, :] + rng.normal(scale=0.5, size=(T, 2, 2))

    instance = MSPInstance(
        requests=RequestSequence.from_packed(requests),
        start=np.zeros(2),
        D=4.0,   # moving the page costs 4x the distance
        m=1.0,   # the offline server may move at most 1.0 per step
        name="quickstart",
    )

    algorithm = MoveToCenter()
    trace = simulate(instance, algorithm, delta=0.5)  # online cap: 1.5 per step

    print(f"instance:        {instance}")
    print(f"algorithm:       {algorithm.name}")
    print(f"total cost:      {trace.total_cost:10.2f}")
    print(f"  movement:      {trace.total_movement_cost:10.2f}")
    print(f"  service:       {trace.total_service_cost:10.2f}")
    print(f"distance moved:  {trace.total_distance_moved:10.2f}")
    print(f"max step move:   {trace.max_step_distance():10.4f} (cap was 1.5)")

    meas = measure_ratio(instance, MoveToCenter(), delta=0.5)
    print(f"offline optimum in [{meas.opt_lower:.2f}, {meas.opt_upper:.2f}]")
    print(f"competitive ratio certified in [{meas.ratio_lower:.3f}, {meas.ratio_upper:.3f}]")


if __name__ == "__main__":
    main()
