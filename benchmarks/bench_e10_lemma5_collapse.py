"""E10 — regenerate the Lemma 5 table: collapse-to-centers loses <= 4a+1.

Kernel benchmarked: collapsing a 6-requests-per-step instance to centers.
"""

import numpy as np

from repro.analysis import collapse_to_centers
from repro.workloads import RandomWalkWorkload


def test_e10_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E10")
    emit(result)

    wl = RandomWalkWorkload(150, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.6,
                            requests_per_step=6)
    inst = wl.generate(np.random.default_rng(0))

    def kernel():
        return collapse_to_centers(inst).length

    n = benchmark(kernel)
    assert n == 150
    assert result.passed, result.render()
