"""E17 — regenerate the dimension-sweep table.

Kernel benchmarked: one MtC run on an 8-dimensional random walk.
"""

import numpy as np

from repro.algorithms import MoveToCenter
from repro.core import simulate
from repro.workloads import RandomWalkWorkload


def test_e17_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E17")
    emit(result)

    wl = RandomWalkWorkload(300, dim=8, D=2.0, m=1.0, sigma=0.3, spread=0.4,
                            requests_per_step=4)
    inst = wl.generate(np.random.default_rng(0))

    def kernel():
        return simulate(inst, MoveToCenter(), delta=0.5).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
