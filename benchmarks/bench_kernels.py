"""Micro-benchmarks of the library's computational kernels.

Not tied to a paper table; these track the throughput of the pieces every
experiment is built from (per the hpc-parallel guidance: measure before
optimizing, and keep measuring):

* the simulation step loop (requests/second end-to-end);
* the safeguarded Weiszfeld solver;
* the banded 1-D DP;
* the small 2-D grid DP transition;
* the Theorem-2 instance generator.
"""

import numpy as np

from repro.adversaries import build_thm2
from repro.algorithms import MoveToCenter
from repro.core import simulate
from repro.median import weiszfeld
from repro.offline import solve_grid, solve_line
from repro.workloads import RandomWalkWorkload


def test_simulation_throughput(benchmark):
    wl = RandomWalkWorkload(1000, dim=2, D=4.0, m=1.0, sigma=0.3, spread=0.5,
                            requests_per_step=8)
    inst = wl.generate(np.random.default_rng(0))

    def kernel():
        return simulate(inst, MoveToCenter(), delta=0.5).total_cost

    assert benchmark(kernel) > 0


def test_weiszfeld_throughput(benchmark):
    pts = np.random.default_rng(0).normal(size=(64, 2))

    def kernel():
        return weiszfeld(pts).iterations

    assert benchmark(kernel) >= 1


def test_dp_line_throughput(benchmark):
    wl = RandomWalkWorkload(300, dim=1, D=2.0, m=1.0, sigma=0.4, spread=0.3,
                            requests_per_step=2)
    inst = wl.generate(np.random.default_rng(1))

    def kernel():
        return solve_line(inst, grid_size=1024).cost

    assert benchmark(kernel) >= 0


def test_dp_grid_throughput(benchmark):
    wl = RandomWalkWorkload(30, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.3,
                            requests_per_step=2)
    inst = wl.generate(np.random.default_rng(2))

    def kernel():
        return solve_grid(inst, grid_shape=(24, 24)).cost

    assert benchmark(kernel) >= 0


def test_thm2_generation_throughput(benchmark):
    def kernel():
        return build_thm2(0.125, cycles=4, rng=np.random.default_rng(3)).instance.length

    assert benchmark(kernel) > 0


def _fused_batch(B=64, T=256):
    wl = RandomWalkWorkload(T, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.4,
                            requests_per_step=2)
    return [wl.generate(np.random.default_rng(100 + s)) for s in range(B)]


def test_fused_kernel_throughput(benchmark):
    """The fused step-kernel path (decide+clamp+validate+account per block)."""
    from repro.core import simulate_batch

    instances = _fused_batch()

    def kernel():
        return simulate_batch(instances, "greedy-centroid", delta=0.5,
                              fuse=True).total_costs.sum()

    assert benchmark(kernel) > 0


def test_batched_loop_throughput(benchmark):
    """The per-step batched loop on the same workload (fused's baseline)."""
    from repro.core import simulate_batch

    instances = _fused_batch()

    def kernel():
        return simulate_batch(instances, "greedy-centroid", delta=0.5,
                              fuse=False).total_costs.sum()

    assert benchmark(kernel) > 0
