"""E7 — regenerate the Theorem 8 table: faster agent forces ratio ~ sqrt(T).

Kernel benchmarked: moving-client MtC on a T=2048 sprint construction.
"""

import numpy as np

from repro.adversaries import build_thm8
from repro.algorithms import MovingClientMtC
from repro.core import simulate


def test_e7_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E7")
    emit(result)

    adv = build_thm8(2048, epsilon=1.0, rng=np.random.default_rng(0))

    def kernel():
        return simulate(adv.instance, MovingClientMtC(), delta=0.0).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
