"""Batched vs scalar engine throughput.

Measures end-to-end simulation throughput in (instance, step) pairs per
second — "steps/sec" — for the scalar per-instance loop
(:func:`repro.core.simulator.simulate`) against the lock-step batched
engine (:func:`repro.core.engine.simulate_batch`) at batch sizes
B ∈ {1, 32, 256} on a 2-D random-walk workload.

Two algorithms bracket the engine's win:

* ``greedy-centroid`` — fully vectorized decision rule; the per-step cost
  is a handful of whole-batch NumPy calls, so the speedup tracks the
  amortized Python overhead directly (the acceptance bar: ≥ 5× at B=256);
* ``mtc`` — the paper's algorithm; its geometric median stays a per-lane
  exact solve, so the speedup shows what vectorized accounting alone buys.

The totals of both paths are asserted equal, so the comparison can never
silently drift into measuring different work.

Run directly (``python benchmarks/bench_engine_batched.py``) for the
table, or via pytest where the ≥ 5× acceptance criterion is enforced.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms import make_algorithm
from repro.core import simulate, simulate_batch
from repro.workloads import RandomWalkWorkload

T = 150
BATCH_SIZES = (1, 32, 256)
DELTA = 0.5


def _instances(B: int) -> list:
    wl = RandomWalkWorkload(T, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.4,
                            requests_per_step=4)
    return [wl.generate(np.random.default_rng(s)) for s in range(B)]


def _scalar_run(instances, name: str) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    totals = np.array([
        simulate(inst, make_algorithm(name), delta=DELTA).total_cost
        for inst in instances
    ])
    elapsed = time.perf_counter() - start
    return len(instances) * T / elapsed, totals


def _batched_run(instances, name: str) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    totals = simulate_batch(instances, name, delta=DELTA).total_costs
    elapsed = time.perf_counter() - start
    return len(instances) * T / elapsed, totals


def measure(name: str) -> list[tuple[int, float, float, float]]:
    """``(B, scalar steps/s, batched steps/s, speedup)`` rows for one algorithm."""
    rows = []
    for B in BATCH_SIZES:
        instances = _instances(B)
        # Warm-up pass so one-time costs (imports, allocator) don't skew B=1.
        simulate_batch(instances[:1], name, delta=DELTA)
        scalar_sps, scalar_totals = _scalar_run(instances, name)
        batched_sps, batched_totals = _batched_run(instances, name)
        np.testing.assert_array_equal(batched_totals, scalar_totals)
        rows.append((B, scalar_sps, batched_sps, batched_sps / scalar_sps))
    return rows


def _render(name: str, rows) -> str:
    lines = [f"{name}: batched vs scalar throughput (T={T}, 2-D, 4 req/step)",
             f"{'B':>5} | {'scalar steps/s':>14} | {'batched steps/s':>15} | {'speedup':>7}"]
    for B, s, b, x in rows:
        lines.append(f"{B:>5} | {s:>14,.0f} | {b:>15,.0f} | {x:>6.1f}x")
    return "\n".join(lines)


def test_batched_engine_speedup(capsys):
    """Acceptance: ≥ 5× steps/sec over scalar at B=256 for a vectorized algorithm."""
    rows = measure("greedy-centroid")
    with capsys.disabled():
        print()
        print(_render("greedy-centroid", rows))
    by_B = {B: x for B, _, _, x in rows}
    assert by_B[256] >= 5.0, f"batched speedup at B=256 is only {by_B[256]:.1f}x"


def test_batched_engine_mtc_tracks_scalar(capsys):
    """MtC (per-lane median) must not regress under the batched engine."""
    rows = measure("mtc")
    with capsys.disabled():
        print()
        print(_render("mtc", rows))
    by_B = {B: x for B, _, _, x in rows}
    assert by_B[256] >= 0.9, f"batched MtC slower than scalar: {by_B[256]:.2f}x"


if __name__ == "__main__":
    for name in ("greedy-centroid", "mtc"):
        print(_render(name, measure(name)))
        print()
