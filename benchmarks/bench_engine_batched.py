"""Engine hot-path throughput: scalar loop vs batched loop vs fused kernels.

Measures end-to-end simulation throughput in (instance, step) pairs per
second — "steps/sec" — at three rungs of the engine ladder:

* the scalar per-instance loop (:func:`repro.core.simulator.simulate`);
* the lock-step batched engine (:func:`repro.core.engine.simulate_batch`)
  driving the per-step ``decide_batch`` loop (``fuse=False``);
* the fused step kernels (:mod:`repro.core.kernels`, ``fuse=True``),
  which collapse decide/clamp/validate/accounting into block-wise passes
  over the packed request stack.

Every comparison first asserts the paths produce bit-identical traces,
so the numbers can never silently measure different work.  Because this
box times under heavy scheduler contention, the loop-vs-fused comparison
interleaves both paths within each round and reports the median of
per-round ratios rather than comparing two separate timing windows.

Run directly to (re)generate ``BENCH_engine.json``::

    PYTHONPATH=src python benchmarks/bench_engine_batched.py [--out BENCH_engine.json]

or via pytest (the bench suite), where the acceptance criteria are
enforced: batched ≥ 5× scalar, fused ≥ 5× the batched loop for at
least one kerneled algorithm at B=256, and the median-family (MtC)
kernel ≥ 3× the per-step batched loop at B=256.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms import make_algorithm
from repro.core import simulate, simulate_batch
from repro.workloads import DriftWorkload, RandomWalkWorkload

T = 150
BATCH_SIZES = (1, 32, 256)
DELTA = 0.5

#: Fused-kernel measurement grid: every registered kernel in three regimes —
#: single-request drift at full augmentation on the line (the paper's 1-D
#: case, where the kernels' d==1 special path applies) and in the plane
#: (where greedy-centroid's exact-landing fast-forward engages), plus the
#: 4-request random walk (where the packed-stack build is a real cost).
FUSED_T = 512
FUSED_BATCH_SIZES = (32, 256)
FUSED_CONFIGS = (
    {"workload": "drift", "dim": 1, "requests_per_step": 1, "delta": 1.0},
    {"workload": "drift", "dim": 2, "requests_per_step": 1, "delta": 1.0},
    {"workload": "random-walk", "dim": 2, "requests_per_step": 4, "delta": 0.5},
)
FUSED_ALGORITHMS = ("greedy-centroid", "nearest-chaser", "static")

#: Median-family measurement: the MtC/follow kernels against the per-step
#: batched loop.  The loop pays one cross-lane geometric-median solve per
#: step *plus* per-lane Python dispatch, so it is orders of magnitude
#: slower than the time-major kernels above — a short horizon keeps the
#: loop baseline affordable while B=256 (the acceptance point) still
#: exercises the cross-lane solver at full width.
MEDIAN_T = 32
MEDIAN_B = 256
MEDIAN_CONFIG = {"workload": "drift", "dim": 2, "requests_per_step": 2,
                 "delta": 0.5, "T": MEDIAN_T}
MEDIAN_ALGORITHMS = ("mtc", "follow-last")

_TRACE_FIELDS = ("positions", "movement_costs", "service_costs",
                 "distances_moved", "request_counts")


def _instances(B: int) -> list:
    wl = RandomWalkWorkload(T, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.4,
                            requests_per_step=4)
    return [wl.generate(np.random.default_rng(s)) for s in range(B)]


def _scalar_run(instances, name: str) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    totals = np.array([
        simulate(inst, make_algorithm(name), delta=DELTA).total_cost
        for inst in instances
    ])
    elapsed = time.perf_counter() - start
    return len(instances) * T / elapsed, totals


def _batched_run(instances, name: str) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    totals = simulate_batch(instances, name, delta=DELTA).total_costs
    elapsed = time.perf_counter() - start
    return len(instances) * T / elapsed, totals


def measure(name: str) -> list[tuple[int, float, float, float]]:
    """``(B, scalar steps/s, batched steps/s, speedup)`` rows for one algorithm."""
    rows = []
    for B in BATCH_SIZES:
        instances = _instances(B)
        # Warm-up pass so one-time costs (imports, allocator) don't skew B=1.
        simulate_batch(instances[:1], name, delta=DELTA)
        scalar_sps, scalar_totals = _scalar_run(instances, name)
        batched_sps, batched_totals = _batched_run(instances, name)
        np.testing.assert_array_equal(batched_totals, scalar_totals)
        rows.append((B, scalar_sps, batched_sps, batched_sps / scalar_sps))
    return rows


def _render(name: str, rows) -> str:
    lines = [f"{name}: batched vs scalar throughput (T={T}, 2-D, 4 req/step)",
             f"{'B':>5} | {'scalar steps/s':>14} | {'batched steps/s':>15} | {'speedup':>7}"]
    for B, s, b, x in rows:
        lines.append(f"{B:>5} | {s:>14,.0f} | {b:>15,.0f} | {x:>6.1f}x")
    return "\n".join(lines)


# -- fused kernels vs the per-step batched loop ----------------------------


def _fused_instances(config: dict, B: int) -> list:
    r = config["requests_per_step"]
    dim = config["dim"]
    T_cfg = config.get("T", FUSED_T)
    if config["workload"] == "drift":
        rotate = {"rotate": 0.02} if dim == 2 else {}
        wl = DriftWorkload(T_cfg, dim=dim, D=2.0, m=1.0, speed=0.8,
                           spread=0.2, requests_per_step=r, **rotate)
    else:
        wl = RandomWalkWorkload(T_cfg, dim=dim, D=2.0, m=1.0, sigma=0.3,
                                spread=0.4, requests_per_step=r)
    return [wl.generate(np.random.default_rng(7000 + s)) for s in range(B)]


def _assert_traces_equal(a, b) -> None:
    for field in _TRACE_FIELDS:
        np.testing.assert_array_equal(getattr(a, field), getattr(b, field))


def measure_fused(name: str, config: dict, B: int,
                  rounds: int = 7, fused_reps: int = 5) -> dict:
    """Interleaved loop-vs-fused measurement of one configuration.

    Each round times one ``fuse=False`` run against the mean of
    ``fused_reps`` ``fuse=True`` runs.  The headline ``speedup`` is the
    ratio of *minimum* times across rounds — the standard ``timeit``
    estimator, since scheduler noise on this contended box only ever
    adds time — with the median of per-round ratios reported alongside.
    """
    instances = _fused_instances(config, B)
    delta = config["delta"]
    T_cfg = config.get("T", FUSED_T)
    fused_trace = simulate_batch(instances, name, delta=delta, fuse=True)
    loop_trace = simulate_batch(instances, name, delta=delta, fuse=False)
    _assert_traces_equal(fused_trace, loop_trace)
    lane_steps = B * T_cfg
    loop_times, fused_times = [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        simulate_batch(instances, name, delta=delta, fuse=False)
        loop_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(fused_reps):
            simulate_batch(instances, name, delta=delta, fuse=True)
        fused_times.append((time.perf_counter() - t0) / fused_reps)
    return {
        "algorithm": name,
        "workload": config["workload"],
        "dim": config["dim"],
        "requests_per_step": config["requests_per_step"],
        "delta": delta,
        "T": T_cfg,
        "B": B,
        "loop_steps_per_sec": lane_steps / min(loop_times),
        "fused_steps_per_sec": lane_steps / min(fused_times),
        "speedup": min(loop_times) / min(fused_times),
        "speedup_median": statistics.median(
            lt / ft for lt, ft in zip(loop_times, fused_times)),
        "parity": True,  # asserted above, bit-for-bit
    }


def measure_fused_grid(progress=None) -> list[dict]:
    rows = []
    for config in FUSED_CONFIGS:
        for name in FUSED_ALGORITHMS:
            for B in FUSED_BATCH_SIZES:
                row = measure_fused(name, config, B)
                rows.append(row)
                if progress is not None:
                    progress(
                        f"{row['workload']}/d={row['dim']}/r={row['requests_per_step']}"
                        f"/delta={row['delta']} {row['algorithm']:16s} B={B:>3}: "
                        f"loop {row['loop_steps_per_sec']:>12,.0f}/s  "
                        f"fused {row['fused_steps_per_sec']:>12,.0f}/s  "
                        f"{row['speedup']:.2f}x"
                    )
    return rows


def measure_median_grid(progress=None) -> list[dict]:
    """MtC/follow fused-vs-loop rows at the B=256 acceptance point."""
    rows = []
    for name in MEDIAN_ALGORITHMS:
        # The per-step loop baseline costs tens of seconds per run at
        # this width, so fewer (still interleaved) rounds than the
        # time-major grid.
        row = measure_fused(name, MEDIAN_CONFIG, MEDIAN_B,
                            rounds=2, fused_reps=3)
        rows.append(row)
        if progress is not None:
            progress(
                f"{row['workload']}/d={row['dim']}/r={row['requests_per_step']}"
                f"/delta={row['delta']} {row['algorithm']:16s} B={row['B']:>3}: "
                f"loop {row['loop_steps_per_sec']:>12,.0f}/s  "
                f"fused {row['fused_steps_per_sec']:>12,.0f}/s  "
                f"{row['speedup']:.2f}x"
            )
    return rows


def _best_fused(rows: list[dict]) -> dict:
    at_256 = [r for r in rows if r["B"] == 256]
    return max(at_256, key=lambda r: r["speedup"])


def _median_row(rows: list[dict], name: str) -> dict:
    return next(r for r in rows if r["algorithm"] == name and r["B"] == MEDIAN_B)


def write_report(rows: list[dict], median_rows: list[dict],
                 out: str | Path) -> dict:
    best = _best_fused(rows)
    mtc = _median_row(median_rows, "mtc")
    payload = {
        "benchmark": "engine-fused-kernels",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "measurement": ("interleaved rounds, median of per-round "
                        "loop/fused ratios; traces asserted bit-identical"),
        "rows": rows,
        "median_family_rows": median_rows,
        "summary": {
            "best_speedup_at_B256": best["speedup"],
            "best_config": {k: best[k] for k in
                            ("algorithm", "workload", "dim",
                             "requests_per_step", "delta")},
            "acceptance_5x_at_B256": best["speedup"] >= 5.0,
            "mtc_speedup_at_B256": mtc["speedup"],
            "acceptance_mtc_3x_at_B256": mtc["speedup"] >= 3.0,
        },
    }
    Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# -- pytest entry points ---------------------------------------------------


def test_batched_engine_speedup(capsys):
    """Acceptance: ≥ 5× steps/sec over scalar at B=256 for a vectorized algorithm."""
    rows = measure("greedy-centroid")
    with capsys.disabled():
        print()
        print(_render("greedy-centroid", rows))
    by_B = {B: x for B, _, _, x in rows}
    assert by_B[256] >= 5.0, f"batched speedup at B=256 is only {by_B[256]:.1f}x"


def test_batched_engine_mtc_tracks_scalar(capsys):
    """MtC (per-lane median) must not regress under the batched engine."""
    rows = measure("mtc")
    with capsys.disabled():
        print()
        print(_render("mtc", rows))
    by_B = {B: x for B, _, _, x in rows}
    assert by_B[256] >= 0.9, f"batched MtC slower than scalar: {by_B[256]:.2f}x"


def test_fused_kernel_speedup(capsys):
    """Acceptance: fused ≥ 5× the batched per-step loop at B=256.

    At least one kerneled algorithm must clear the bar (the greedy
    centroid on single-request drift, where the exact-landing
    fast-forward replays whole target chains per block, is the expected
    winner); every measured configuration is bit-identical by assertion.
    """
    with capsys.disabled():
        print()
        rows = measure_fused_grid(progress=print)
    best = _best_fused(rows)
    assert best["speedup"] >= 5.0, (
        f"best fused speedup at B=256 is only {best['speedup']:.2f}x "
        f"({best['algorithm']} on {best['workload']})"
    )


def test_fused_median_family_speedup(capsys):
    """Acceptance: fused MtC ≥ 3× the per-step batched loop at B=256.

    The loop pays a cross-lane median solve per step plus per-lane Python
    dispatch; the batch-major kernel amortises both over the whole packed
    stack.  Bit-parity is asserted inside the measurement.
    """
    with capsys.disabled():
        print()
        rows = measure_median_grid(progress=print)
    mtc = _median_row(rows, "mtc")
    assert mtc["speedup"] >= 3.0, (
        f"fused mtc speedup at B=256 is only {mtc['speedup']:.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=str, default="BENCH_engine.json")
    args = parser.parse_args(argv)
    for name in ("greedy-centroid", "mtc"):
        print(_render(name, measure(name)))
        print()
    rows = measure_fused_grid(progress=print)
    median_rows = measure_median_grid(progress=print)
    payload = write_report(rows, median_rows, args.out)
    summary = payload["summary"]
    print(f"wrote {args.out}")
    print(f"  best fused speedup at B=256: {summary['best_speedup_at_B256']:.2f}x "
          f"({summary['best_config']['algorithm']} on "
          f"{summary['best_config']['workload']}, "
          f"d={summary['best_config']['dim']}, "
          f"r={summary['best_config']['requests_per_step']}, "
          f"delta={summary['best_config']['delta']})")
    print(f"  acceptance (>=5x at B=256): {summary['acceptance_5x_at_B256']}")
    print(f"  fused mtc vs per-step loop at B=256: "
          f"{summary['mtc_speedup_at_B256']:.2f}x "
          f"(acceptance >=3x: {summary['acceptance_mtc_3x_at_B256']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
