"""E15 (extension) — regenerate the capped 2-server table.

Kernel benchmarked: the product-grid 2-server DP bracket.
"""

import numpy as np

from repro.experiments.e15_multi_server import _two_hotspot_batches
from repro.extensions import solve_two_servers_line


def test_e15_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E15")
    emit(result)

    rng = np.random.default_rng(0)
    batches = _two_hotspot_batches(60, speed=0.5, gap=6.0, amplitude=4.0,
                                   spread=0.2, rng=rng)
    starts = np.array([[-3.0], [3.0]])

    def kernel():
        return solve_two_servers_line(starts, batches, m=1.0, D=2.0, grid_size=128).cost

    cost = benchmark(kernel)
    assert cost >= 0
    assert result.passed, result.render()
