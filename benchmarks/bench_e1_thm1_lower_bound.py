"""E1 — regenerate the Theorem 1 table (ratio ~ sqrt(T/D), no augmentation).

Kernel benchmarked: one MtC run on a T=1024 Theorem-1 instance.
"""

import numpy as np

from repro.adversaries import build_thm1
from repro.algorithms import MoveToCenter
from repro.core import simulate


def test_e1_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E1")
    emit(result)

    adv = build_thm1(1024, rng=np.random.default_rng(0))

    def kernel():
        return simulate(adv.instance, MoveToCenter(), delta=0.0).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
