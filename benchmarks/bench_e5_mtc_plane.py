"""E5 — regenerate the Theorem 4 (plane) table: MtC O(1/delta^{3/2}).

Kernel benchmarked: the convex relaxation bracket on a 2-D instance.
"""

import numpy as np

from repro.offline import convex_bracket
from repro.workloads import RandomWalkWorkload


def test_e5_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E5")
    emit(result)

    wl = RandomWalkWorkload(100, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.4,
                            requests_per_step=4)
    inst = wl.generate(np.random.default_rng(0))

    def kernel():
        return convex_bracket(inst).upper

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
