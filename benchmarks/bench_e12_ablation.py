"""E12 — regenerate the MtC ablation table (damping, tie-break, augmentation).

Kernel benchmarked: the paper-exact MtC on a drift instance (the common
denominator of every ablation row).
"""

import numpy as np

from repro.algorithms import MoveToCenter
from repro.core import simulate
from repro.workloads import DriftWorkload


def test_e12_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E12")
    emit(result)

    wl = DriftWorkload(200, dim=1, D=4.0, m=1.0, speed=0.8, spread=0.2,
                       requests_per_step=2)
    inst = wl.generate(np.random.default_rng(0))

    def kernel():
        return simulate(inst, MoveToCenter(), delta=0.5).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
