"""E13 — regenerate the baseline cross-section (Euclidean, page migration, k-server).

Kernel benchmarked: the exact page-migration node DP on a 16-node network.
"""

import numpy as np

from repro.pagemigration import complete_uniform, offline_page_migration


def test_e13_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E13")
    emit(result)

    net = complete_uniform(16)
    requests = np.random.default_rng(0).integers(0, 16, size=300)

    def kernel():
        return offline_page_migration(net, requests, start=0, D=4.0).total

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
