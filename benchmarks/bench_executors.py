"""Executor backends head-to-head: inline vs process vs spool.

Runs the same experiment grid through each execution backend and writes
machine-readable wall-clocks to ``BENCH_executors.json``:

* ``cold_inline`` — everything in this process (the baseline);
* ``cold_process`` — a local 2-worker process pool, with the sizes of
  the mega-batch waves it dispatched (ready cells of a group-runner
  function cross the process boundary together);
* ``cold_spool`` — the distributed path with **one** worker subprocess
  draining the spool (measures the full task-file + store round-trip
  overhead, not parallelism);
* ``cold_spool_batched`` — the same spool path with the worker claiming
  up to 8 tasks per scan (``--batch 8``) and draining compatible ones
  through one fused mega-batch call, with the wave sizes it reported;
* ``warm`` — a second inline pass over the spool run's store: every
  cell a cache hit, proving the distributed payloads are first-class
  store entries.

``os.cpu_count()`` is recorded alongside: on a single-CPU container the
point of the process/spool rows is *parity* (identical tables, bounded
overhead), not speedup — multi-worker wins need multi-core hardware,
which is what the CI ``distributed-smoke`` job exercises.

Usage::

    PYTHONPATH=src python benchmarks/bench_executors.py \
        [--ids E4 E13 E12] [--scale 0.4] [--out BENCH_executors.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.store import ResultsStore
from repro.experiments import run_all_detailed
from repro.experiments.executors import ProcessExecutor, Spool, SpoolExecutor


def _timed_run(ids, scale, seed, store, **kwargs):
    start = time.perf_counter()
    report = run_all_detailed(ids, scale=scale, seed=seed, store=store, **kwargs)
    return time.perf_counter() - start, report


def _start_worker(spool_dir: Path, store_dir: Path, wid: str,
                  batch: int = 1) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(p for p in (src, env.get("PYTHONPATH")) if p)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--spool", str(spool_dir), "--store", str(store_dir),
         "--poll", "0.02", "--worker-id", wid, "--batch", str(batch)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def _worker_wave_sizes(output: str) -> list[int]:
    """Parse the wave summary line a batched worker prints on exit."""
    match = re.search(r"wave\(s\) of sizes \[([0-9,]*)\]", output)
    if match is None or not match.group(1):
        return []
    return [int(n) for n in match.group(1).split(",")]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # E4/E13 are hand-written cell experiments (the non-grouped executor
    # path); E12 flattens to scenario cells whose group runner gives the
    # process pool and the batched worker real mega-batch waves to report.
    parser.add_argument("--ids", nargs="+", default=["E4", "E13", "E12"])
    parser.add_argument("--scale", type=float, default=0.4,
                        help="workload scale (0.4 matches the bench suite)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default="BENCH_executors.json")
    args = parser.parse_args(argv)

    runs = {}
    renders = {}
    with tempfile.TemporaryDirectory(prefix="bench-executors-") as tmp:
        tmp = Path(tmp)

        elapsed, report = _timed_run(args.ids, args.scale, args.seed,
                                     ResultsStore(tmp / "store-inline"))
        runs["cold_inline"] = {"seconds": elapsed, "units_computed": report.computed}
        renders["inline"] = [res.render() for res in report.results]
        print(f"cold inline : {elapsed:7.2f}s ({report.computed} units)")

        pool = ProcessExecutor(jobs=2)
        elapsed, report = _timed_run(args.ids, args.scale, args.seed,
                                     ResultsStore(tmp / "store-process"),
                                     executor=pool)
        runs["cold_process"] = {"seconds": elapsed, "jobs": 2,
                                "units_computed": report.computed,
                                "wave_sizes": list(pool.wave_sizes)}
        renders["process"] = [res.render() for res in report.results]
        print(f"cold process: {elapsed:7.2f}s (2-worker pool, "
              f"waves {pool.wave_sizes})")

        spool_dir = tmp / "spool"
        spool_store = ResultsStore(tmp / "store-spool")
        worker = _start_worker(spool_dir, spool_store.root, "bench-w1")
        try:
            elapsed, report = _timed_run(
                args.ids, args.scale, args.seed, spool_store,
                executor=SpoolExecutor(spool_dir, poll=0.02, timeout=3600))
        finally:
            Spool(spool_dir).request_stop()
            worker.communicate(timeout=60)
        runs["cold_spool"] = {"seconds": elapsed, "workers": 1,
                              "units_computed": report.computed}
        renders["spool"] = [res.render() for res in report.results]
        print(f"cold spool  : {elapsed:7.2f}s (1 worker subprocess)")

        batched_dir = tmp / "spool-batched"
        batched_store = ResultsStore(tmp / "store-spool-batched")
        worker = _start_worker(batched_dir, batched_store.root,
                               "bench-w1-batched", batch=8)
        try:
            elapsed, report = _timed_run(
                args.ids, args.scale, args.seed, batched_store,
                executor=SpoolExecutor(batched_dir, poll=0.02, timeout=3600))
        finally:
            Spool(batched_dir).request_stop()
            worker_out = worker.communicate(timeout=60)[0]
        wave_sizes = _worker_wave_sizes(worker_out)
        runs["cold_spool_batched"] = {"seconds": elapsed, "workers": 1,
                                      "batch": 8,
                                      "units_computed": report.computed,
                                      "wave_sizes": wave_sizes}
        renders["spool-batched"] = [res.render() for res in report.results]
        print(f"cold spool-batched: {elapsed:7.2f}s "
              f"(1 worker subprocess, --batch 8, waves {wave_sizes})")

        for name, tables in renders.items():
            assert tables == renders["inline"], f"{name} diverged from inline"

        # Warm pass over the *distributed* store: worker payloads are
        # ordinary cache entries.
        elapsed, report = _timed_run(args.ids, args.scale, args.seed, spool_store)
        runs["warm"] = {"seconds": elapsed, "units_cached": report.cached,
                        "units_computed": report.computed}
        print(f"warm inline : {elapsed:7.2f}s ({report.cached} cached)")

    cold = runs["cold_inline"]["seconds"]
    summary = {
        "process_vs_inline": cold / runs["cold_process"]["seconds"],
        "spool_vs_inline": cold / runs["cold_spool"]["seconds"],
        "spool_overhead_seconds": runs["cold_spool"]["seconds"] - cold,
        "spool_batched_vs_inline": cold / runs["cold_spool_batched"]["seconds"],
        "spool_batched_vs_spool": (runs["cold_spool"]["seconds"]
                                   / runs["cold_spool_batched"]["seconds"]),
        "warm_fraction_of_cold": runs["warm"]["seconds"] / cold,
        "tables_identical_across_backends": True,
    }
    payload = {
        "benchmark": "executor-backends",
        "ids": args.ids,
        "scale": args.scale,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "runs": runs,
        "summary": summary,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    for key, value in summary.items():
        print(f"  {key}: {value if isinstance(value, bool) else round(value, 3)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
