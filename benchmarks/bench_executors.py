"""Executor backends head-to-head: inline vs process vs spool.

Runs the same experiment grid through each execution backend and writes
machine-readable wall-clocks to ``BENCH_executors.json``:

* ``cold_inline`` — everything in this process (the baseline);
* ``cold_process`` — a local 2-worker process pool;
* ``cold_spool`` — the distributed path with **one** worker subprocess
  draining the spool (measures the full task-file + store round-trip
  overhead, not parallelism);
* ``warm`` — a second inline pass over the spool run's store: every
  cell a cache hit, proving the distributed payloads are first-class
  store entries.

``os.cpu_count()`` is recorded alongside: on a single-CPU container the
point of the process/spool rows is *parity* (identical tables, bounded
overhead), not speedup — multi-worker wins need multi-core hardware,
which is what the CI ``distributed-smoke`` job exercises.

Usage::

    PYTHONPATH=src python benchmarks/bench_executors.py \
        [--ids E4 E13] [--scale 0.4] [--out BENCH_executors.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.store import ResultsStore
from repro.experiments import run_all_detailed
from repro.experiments.executors import Spool, SpoolExecutor


def _timed_run(ids, scale, seed, store, **kwargs):
    start = time.perf_counter()
    report = run_all_detailed(ids, scale=scale, seed=seed, store=store, **kwargs)
    return time.perf_counter() - start, report


def _start_worker(spool_dir: Path, store_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(p for p in (src, env.get("PYTHONPATH")) if p)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--spool", str(spool_dir), "--store", str(store_dir),
         "--poll", "0.02", "--worker-id", "bench-w1"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ids", nargs="+", default=["E4", "E13"])
    parser.add_argument("--scale", type=float, default=0.4,
                        help="workload scale (0.4 matches the bench suite)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default="BENCH_executors.json")
    args = parser.parse_args(argv)

    runs = {}
    renders = {}
    with tempfile.TemporaryDirectory(prefix="bench-executors-") as tmp:
        tmp = Path(tmp)

        elapsed, report = _timed_run(args.ids, args.scale, args.seed,
                                     ResultsStore(tmp / "store-inline"))
        runs["cold_inline"] = {"seconds": elapsed, "units_computed": report.computed}
        renders["inline"] = [res.render() for res in report.results]
        print(f"cold inline : {elapsed:7.2f}s ({report.computed} units)")

        elapsed, report = _timed_run(args.ids, args.scale, args.seed,
                                     ResultsStore(tmp / "store-process"),
                                     executor="process", jobs=2)
        runs["cold_process"] = {"seconds": elapsed, "jobs": 2,
                                "units_computed": report.computed}
        renders["process"] = [res.render() for res in report.results]
        print(f"cold process: {elapsed:7.2f}s (2-worker pool)")

        spool_dir = tmp / "spool"
        spool_store = ResultsStore(tmp / "store-spool")
        worker = _start_worker(spool_dir, spool_store.root)
        try:
            elapsed, report = _timed_run(
                args.ids, args.scale, args.seed, spool_store,
                executor=SpoolExecutor(spool_dir, poll=0.02, timeout=3600))
        finally:
            Spool(spool_dir).request_stop()
            worker.wait(timeout=60)
        runs["cold_spool"] = {"seconds": elapsed, "workers": 1,
                              "units_computed": report.computed}
        renders["spool"] = [res.render() for res in report.results]
        print(f"cold spool  : {elapsed:7.2f}s (1 worker subprocess)")

        for name, tables in renders.items():
            assert tables == renders["inline"], f"{name} diverged from inline"

        # Warm pass over the *distributed* store: worker payloads are
        # ordinary cache entries.
        elapsed, report = _timed_run(args.ids, args.scale, args.seed, spool_store)
        runs["warm"] = {"seconds": elapsed, "units_cached": report.cached,
                        "units_computed": report.computed}
        print(f"warm inline : {elapsed:7.2f}s ({report.cached} cached)")

    cold = runs["cold_inline"]["seconds"]
    summary = {
        "process_vs_inline": cold / runs["cold_process"]["seconds"],
        "spool_vs_inline": cold / runs["cold_spool"]["seconds"],
        "spool_overhead_seconds": runs["cold_spool"]["seconds"] - cold,
        "warm_fraction_of_cold": runs["warm"]["seconds"] / cold,
        "tables_identical_across_backends": True,
    }
    payload = {
        "benchmark": "executor-backends",
        "ids": args.ids,
        "scale": args.scale,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "runs": runs,
        "summary": summary,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    for key, value in summary.items():
        print(f"  {key}: {value if isinstance(value, bool) else round(value, 3)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
