"""Orchestrator throughput: the heavy-experiment grid, cold vs parallel vs warm.

Runs the migrated experiment grid (E4, E5, E8, E13, E17) through the
declarative orchestrator three ways and writes machine-readable wall-clock
numbers to ``BENCH_orchestrator.json`` so the perf trajectory is tracked
from PR 2 on:

* ``jobs=1`` cold — sequential baseline (already faster than the pre-
  orchestrator loops: offline brackets are solved once per workload and
  shared across each δ sweep instead of being re-solved per δ);
* ``jobs=4`` cold — process fan-out over the pooled work units (its
  speedup is bounded by the machine's core count, recorded alongside);
* warm — a second ``jobs=1`` invocation against the populated store;
  every cell is a cache hit, so this measures store+finalize overhead
  and must come in far below the cold run.

Usage::

    PYTHONPATH=src python benchmarks/bench_orchestrator.py \
        [--scale 0.4] [--jobs 1 4] [--out BENCH_orchestrator.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.core.store import ResultsStore
from repro.experiments import run_all_detailed

GRID = ["E4", "E5", "E8", "E13", "E17"]


def _timed_run(ids, scale, seed, jobs, store, rerun=False):
    start = time.perf_counter()
    report = run_all_detailed(ids, scale=scale, seed=seed, jobs=jobs,
                              store=store, rerun=rerun)
    elapsed = time.perf_counter() - start
    return elapsed, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.4,
                        help="workload scale (0.4 matches the bench suite)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 4],
                        help="jobs settings to time cold (default: 1 4)")
    parser.add_argument("--out", type=str, default="BENCH_orchestrator.json")
    args = parser.parse_args(argv)

    runs = {}
    renders = {}
    with tempfile.TemporaryDirectory(prefix="bench-orchestrator-") as tmp:
        for jobs in args.jobs:
            store = ResultsStore(Path(tmp) / f"store-jobs{jobs}")
            elapsed, report = _timed_run(GRID, args.scale, args.seed, jobs, store)
            runs[f"cold_jobs{jobs}"] = {
                "seconds": elapsed,
                "jobs": jobs,
                "units_computed": report.computed,
                "units_cached": report.cached,
            }
            renders[jobs] = [res.render() for res in report.results]
            print(f"cold  jobs={jobs}: {elapsed:7.2f}s "
                  f"({report.computed} units computed)")

        if len(renders) > 1:
            baseline = renders[args.jobs[0]]
            for jobs, tables in renders.items():
                assert tables == baseline, f"jobs={jobs} diverged from jobs={args.jobs[0]}"

        # Warm run against the first store: everything should cache-hit.
        warm_store = ResultsStore(Path(tmp) / f"store-jobs{args.jobs[0]}")
        elapsed, report = _timed_run(GRID, args.scale, args.seed, 1, warm_store)
        runs["warm"] = {
            "seconds": elapsed,
            "jobs": 1,
            "units_computed": report.computed,
            "units_cached": report.cached,
        }
        print(f"warm  jobs=1: {elapsed:7.2f}s "
              f"({report.cached} units cached, {report.computed} computed)")

    cold0 = runs[f"cold_jobs{args.jobs[0]}"]["seconds"]
    summary = {
        "warm_fraction_of_cold": runs["warm"]["seconds"] / cold0,
    }
    for jobs in args.jobs[1:]:
        summary[f"speedup_jobs{jobs}_vs_jobs{args.jobs[0]}"] = (
            cold0 / runs[f"cold_jobs{jobs}"]["seconds"]
        )

    payload = {
        "benchmark": "orchestrator-grid",
        "grid": GRID,
        "scale": args.scale,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "runs": runs,
        "summary": summary,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    for key, value in summary.items():
        print(f"  {key}: {value:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
