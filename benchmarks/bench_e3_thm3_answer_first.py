"""E3 — regenerate the Theorem 3 table (answer-first ratio ~ r/D).

Kernel benchmarked: answer-first MtC on a 60-cycle, r=16 construction.
"""

import numpy as np

from repro.adversaries import build_thm3
from repro.algorithms import AnswerFirstMoveToCenter
from repro.core import simulate


def test_e3_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E3")
    emit(result)

    adv = build_thm3(cycles=60, r=16, rng=np.random.default_rng(0))

    def kernel():
        return simulate(adv.instance, AnswerFirstMoveToCenter(), delta=0.5).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
