"""E2 — regenerate the Theorem 2 table (ratio ~ (1/delta)*Rmax/Rmin).

Kernel benchmarked: one augmented MtC run on a delta=0.25 construction.
"""

import numpy as np

from repro.adversaries import build_thm2
from repro.algorithms import MoveToCenter
from repro.core import simulate


def test_e2_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E2")
    emit(result)

    adv = build_thm2(0.25, cycles=4, rng=np.random.default_rng(0))

    def kernel():
        return simulate(adv.instance, MoveToCenter(), delta=0.25).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
