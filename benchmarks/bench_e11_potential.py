"""E11 — regenerate the potential-argument table (Sections 4.1/4.2).

Kernel benchmarked: evaluating the potential along a 150-step run pair.
"""

import numpy as np

from repro.algorithms import MoveToCenter
from repro.analysis import collapse_to_centers, verify_potential_argument
from repro.core import simulate
from repro.offline import solve_line
from repro.workloads import DriftWorkload


def test_e11_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E11")
    emit(result)

    wl = DriftWorkload(150, dim=1, D=2.0, m=1.0, speed=0.75, spread=0.3,
                       requests_per_step=6)
    inst = collapse_to_centers(wl.generate(np.random.default_rng(0)))
    tr = simulate(inst, MoveToCenter(), delta=0.5)
    dp = solve_line(inst)

    def kernel():
        return verify_potential_argument(inst, tr, dp.positions, 0.5).max_k

    max_k = benchmark(kernel)
    assert np.isfinite(max_k)
    assert result.passed, result.render()
