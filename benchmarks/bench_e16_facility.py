"""E16 (extension) — regenerate the mobile facility-location table.

Kernel benchmarked: one mobile-Meyerson run on a drifting workload.
"""

import numpy as np

from repro.experiments.e16_facility import _drift_batches
from repro.extensions import MobileMeyerson, simulate_facilities


def test_e16_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E16")
    emit(result)

    batches = _drift_batches(150, np.random.default_rng(0))

    def kernel():
        return simulate_facilities(
            batches, MobileMeyerson(np.random.default_rng(1)), f=30.0, D=1.0, m=1.0
        ).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
