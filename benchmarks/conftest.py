"""Shared helpers for the benchmark/experiment-regeneration suite.

Each ``bench_eN_*.py`` file does two things:

1. regenerates the experiment's table (the paper has no empirical tables,
   so these are the theorem-shaped tables defined in DESIGN.md §4) and
   prints it through captured-output suppression so it lands in the bench
   log, also appending it to ``results/``;
2. benchmarks that experiment's computational kernel with
   ``pytest-benchmark`` (simulation loops, DP solves, samplers).

``BENCH_SCALE`` trades table fidelity against wall-clock; 0.4 keeps the
full suite in the low minutes while preserving every criterion.

Tables regenerate through the ``exp_cache`` fixture: one persistent
:class:`repro.core.store.ResultsStore` under ``results/bench-store``
serves every experiment's work units, so a second bench invocation
replays cached cells instead of recomputing the tables.  The per-run
cache accounting lands in ``BENCH_experiments.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import pytest

BENCH_SCALE = 0.4

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = ROOT / "results"
BENCH_STORE = RESULTS_DIR / "bench-store"
CACHE_REPORT = ROOT / "BENCH_experiments.json"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


class _ExperimentCache:
    """Store-backed experiment runner with per-experiment cache stats."""

    def __init__(self, store) -> None:
        self.store = store
        self.stats: dict[str, dict[str, int]] = {}

    def run(self, eid: str, scale: float = BENCH_SCALE, seed: int = 0):
        from repro.experiments import run_all_detailed

        report = run_all_detailed([eid], scale=scale, seed=seed, store=self.store)
        self.stats[eid] = {"computed": report.computed, "cached": report.cached,
                           "skipped": report.skipped}
        return report.results[0]


@pytest.fixture(scope="session")
def exp_cache(results_dir):
    """Session store for experiment tables + BENCH_experiments.json report."""
    from repro.core.store import ResultsStore

    cache = _ExperimentCache(ResultsStore(BENCH_STORE))
    yield cache
    if not cache.stats:
        return
    payload = {
        "benchmark": "experiment-table-cache",
        "scale": BENCH_SCALE,
        "store": str(BENCH_STORE),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "experiments": cache.stats,
        "total_computed": sum(s["computed"] for s in cache.stats.values()),
        "total_cached": sum(s["cached"] for s in cache.stats.values()),
        "store_entries": len(cache.store),
    }
    if CACHE_REPORT.exists():
        # Hand-recorded sections (e.g. the E5 mega-batch migration
        # timings) survive regeneration of the cache accounting.
        try:
            previous = json.loads(CACHE_REPORT.read_text())
        except (OSError, ValueError):
            previous = {}
        for key in ("e5_migration",):
            if key in previous:
                payload[key] = previous[key]
    CACHE_REPORT.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture
def emit(capsys, results_dir):
    """Print an experiment result to the live terminal and persist it."""

    def _emit(result) -> None:
        text = result.render()
        with capsys.disabled():
            print()
            print(text)
        out = results_dir / f"{result.experiment_id.lower()}.txt"
        out.write_text(text + "\n")
        (results_dir / f"{result.experiment_id.lower()}.csv").write_text(result.csv())

    return _emit
