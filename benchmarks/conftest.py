"""Shared helpers for the benchmark/experiment-regeneration suite.

Each ``bench_eN_*.py`` file does two things:

1. regenerates the experiment's table (the paper has no empirical tables,
   so these are the theorem-shaped tables defined in DESIGN.md §4) and
   prints it through captured-output suppression so it lands in the bench
   log, also appending it to ``results/``;
2. benchmarks that experiment's computational kernel with
   ``pytest-benchmark`` (simulation loops, DP solves, samplers).

``BENCH_SCALE`` trades table fidelity against wall-clock; 0.4 keeps the
full suite in the low minutes while preserving every criterion.
"""

from __future__ import annotations

from pathlib import Path

import pytest

BENCH_SCALE = 0.4

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(capsys, results_dir):
    """Print an experiment result to the live terminal and persist it."""

    def _emit(result) -> None:
        text = result.render()
        with capsys.disabled():
            print()
            print(text)
        out = results_dir / f"{result.experiment_id.lower()}.txt"
        out.write_text(text + "\n")
        (results_dir / f"{result.experiment_id.lower()}.csv").write_text(result.csv())

    return _emit
