"""Serve-mode throughput: how wide cross-lane packing pays off live.

Feeds synthetic request streams through a :class:`repro.serve.pool.SessionPool`
at 1, 100 and 10k concurrent lanes — all sharing one algorithm group, so
every tick advances the whole fleet in a single wide engine step — with
the fused kernels on and off, and writes requests/sec to
``BENCH_serve.json``:

* ``pool_*`` rows — the engine path alone (what a saturated server
  spends its time on).  The per-lane-step rate *rising* with the lane
  count is the point: 10k streams amortise one kernel invocation.
* ``server_*`` rows — the same load pushed through the full
  :class:`~repro.serve.server.ServeServer` protocol layer as
  ``feed-many`` requests, with checkpointing disabled (cadence beyond
  the run) and at the default cadence of 16, isolating the JSON +
  checkpoint overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

from repro.serve import SessionPool, SessionSpec
from repro.serve.server import ServeServer

ALGORITHM = "greedy-centroid"
DIM = 2
REQUESTS_PER_STEP = 2

#: lanes -> streamed steps (bounded total work on a 1-CPU container).
LANE_STEPS = {1: 2000, 100: 200, 10_000: 5}


def make_specs(lanes: int) -> list[SessionSpec]:
    rng = np.random.default_rng(1234)
    return [
        SessionSpec(algorithm=ALGORITHM, dim=DIM,
                    start=tuple(float(x) for x in rng.normal(size=DIM)),
                    D=1.5, m=0.7, delta=0.25)
        for _ in range(lanes)
    ]


def make_stream(lanes: int, steps: int) -> np.ndarray:
    rng = np.random.default_rng(99)
    return rng.normal(size=(steps, lanes, REQUESTS_PER_STEP, DIM))


def bench_pool(lanes: int, steps: int, fuse: bool) -> dict:
    specs = make_specs(lanes)
    stream = make_stream(lanes, steps)
    pool = SessionPool(fuse=fuse)
    sessions = [pool.open(spec, f"lane{i}") for i, spec in enumerate(specs)]
    start = time.perf_counter()
    for t in range(steps):
        for i, session in enumerate(sessions):
            session.feed(stream[t, i], at=t)
        pool.tick()
    elapsed = time.perf_counter() - start
    lane_steps = lanes * steps
    return {
        "lanes": lanes, "steps": steps, "fused": fuse,
        "seconds": elapsed,
        "lane_steps_per_sec": lane_steps / elapsed,
        "requests_per_sec": lane_steps * REQUESTS_PER_STEP / elapsed,
    }


def bench_server(lanes: int, steps: int, checkpoint_every: int, root) -> dict:
    specs = make_specs(lanes)
    stream = make_stream(lanes, steps)
    server = ServeServer(root, server_id=f"bench{checkpoint_every}",
                         checkpoint_every=checkpoint_every)
    for i, spec in enumerate(specs):
        reply = server.handle({"op": "open", "session": f"lane{i}",
                               "spec": spec.to_dict()})
        assert reply["ok"], reply
    start = time.perf_counter()
    for t in range(steps):
        reply = server.handle({"op": "feed-many", "feeds": [
            {"session": f"lane{i}", "points": stream[t, i].tolist(), "at": t}
            for i in range(lanes)
        ]})
        assert reply["ok"], reply
    elapsed = time.perf_counter() - start
    lane_steps = lanes * steps
    return {
        "lanes": lanes, "steps": steps,
        "checkpoint_every": checkpoint_every,
        "seconds": elapsed,
        "lane_steps_per_sec": lane_steps / elapsed,
        "requests_per_sec": lane_steps * REQUESTS_PER_STEP / elapsed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=str, default="BENCH_serve.json")
    args = parser.parse_args(argv)

    runs: dict[str, dict] = {}
    for lanes, steps in LANE_STEPS.items():
        for fuse in (True, False):
            key = f"pool_{lanes}_lanes_{'fused' if fuse else 'nofuse'}"
            runs[key] = bench_pool(lanes, steps, fuse)
            print(f"{key:32s}: {runs[key]['requests_per_sec']:12.0f} req/s "
                  f"({runs[key]['seconds']:.3f}s)")

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        lanes, steps = 100, LANE_STEPS[100]
        for cadence, label in ((10**9, "no_checkpoint"), (16, "checkpoint16")):
            key = f"server_{lanes}_lanes_{label}"
            runs[key] = bench_server(lanes, steps, cadence, tmp)
            print(f"{key:32s}: {runs[key]['requests_per_sec']:12.0f} req/s "
                  f"({runs[key]['seconds']:.3f}s)")

    wide = runs["pool_10000_lanes_fused"]["lane_steps_per_sec"]
    solo = runs["pool_1_lanes_fused"]["lane_steps_per_sec"]
    payload = {
        "benchmark": "serve-throughput",
        "algorithm": ALGORITHM,
        "dim": DIM,
        "requests_per_step": REQUESTS_PER_STEP,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "runs": runs,
        "summary": {
            "wide_over_solo_lane_step_speedup": wide / solo,
            "protocol_overhead_ratio": (
                runs["server_100_lanes_no_checkpoint"]["seconds"]
                / runs["pool_100_lanes_fused"]["seconds"]),
        },
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
