"""E8 — regenerate the Theorem 10 table: O(1) moving-client MtC when m_s >= m_a.

Kernel benchmarked: a patrol-agent simulation (instance generation + run).
"""

import numpy as np

from repro.algorithms import MovingClientMtC
from repro.core import simulate
from repro.workloads import PatrolAgentWorkload


def test_e8_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E8")
    emit(result)

    wl = PatrolAgentWorkload(T=300, dim=2, D=4.0, m_server=1.0, m_agent=1.0)
    mc = wl.generate(np.random.default_rng(0))
    inst = mc.as_msp()

    def kernel():
        return simulate(inst, MovingClientMtC(), delta=0.0).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
