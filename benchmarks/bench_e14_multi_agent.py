"""E14 (extension) — regenerate the multi-agent moving-client table.

Kernel benchmarked: multi-agent MtC over 4 patrol agents on the line.
"""

import numpy as np

from repro.core import simulate
from repro.extensions import MultiAgentInstance, MultiAgentMtC
from repro.workloads import random_waypoint_path


def test_e14_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E14")
    emit(result)

    rng = np.random.default_rng(0)
    paths = np.stack(
        [random_waypoint_path(200, dim=1, speed=1.0, rng=rng, arena=15.0) for _ in range(4)],
        axis=1,
    )
    ma = MultiAgentInstance(agent_paths=paths, start=np.zeros(1), D=4.0,
                            m_server=1.0, m_agent=1.0)
    inst = ma.as_msp()

    def kernel():
        return simulate(inst, MultiAgentMtC(n_agents=4), delta=0.0).total_cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
