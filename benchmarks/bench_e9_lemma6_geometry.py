"""E9 — regenerate the Lemma 6 verification table (Figures 1-2).

Kernel benchmarked: sampling 2000 premise-satisfying configurations.
"""

import numpy as np

from repro.analysis import sample_lemma6


def test_e9_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E9")
    emit(result)

    def kernel():
        return sample_lemma6(0.25, n_samples=2000, dim=2,
                             rng=np.random.default_rng(0)).n_checked

    n = benchmark(kernel)
    assert n == 2000
    assert result.passed, result.render()
