"""E6 — regenerate the Theorem 7 table: answer-first MtC inflation bound.

Kernel benchmarked: paired move-first/answer-first simulation of one instance.
"""

import numpy as np

from repro.algorithms import MoveToCenter
from repro.core import CostModel, simulate
from repro.workloads import DriftWorkload


def test_e6_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E6")
    emit(result)

    wl = DriftWorkload(150, dim=1, D=4.0, m=1.0, speed=0.8, spread=0.2,
                       requests_per_step=8)
    inst = wl.generate(np.random.default_rng(0))
    inst_af = inst.with_cost_model(CostModel.ANSWER_FIRST)

    def kernel():
        a = simulate(inst, MoveToCenter(), delta=0.5).total_cost
        b = simulate(inst_af, MoveToCenter(), delta=0.5).total_cost
        return b / a

    inflation = benchmark(kernel)
    assert inflation >= 1.0
    assert result.passed, result.render()
