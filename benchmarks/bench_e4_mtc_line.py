"""E4 — regenerate the Theorem 4 (line) table: MtC O(1/delta) with certification.

Kernel benchmarked: the exact 1-D DP bracket (the experiment's dominant cost).
"""

import numpy as np

from repro.offline import solve_line
from repro.workloads import DriftWorkload


def test_e4_table_and_kernel(benchmark, emit, exp_cache):
    result = exp_cache.run("E4")
    emit(result)

    wl = DriftWorkload(200, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2,
                       requests_per_step=4)
    inst = wl.generate(np.random.default_rng(0))

    def kernel():
        return solve_line(inst).cost

    cost = benchmark(kernel)
    assert cost > 0
    assert result.passed, result.render()
